// Query-service determinism and snapshot-sharing tests.
//
// The contract under test: a QueryResult is a pure function of (snapshot,
// service seed, request) — independent of thread count, batch order, batch
// composition, which service instance ran it, and whether it ran alone via
// run() or inside a concurrent batch via run_batch().
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "service/service.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace lcs;
using service::GraphSnapshot;
using service::QueryKind;
using service::QueryRequest;
using service::QueryResult;
using service::ShortcutService;

std::shared_ptr<const GraphSnapshot> small_snapshot(std::uint64_t seed = 11,
                                                    std::uint32_t n = 300) {
  Rng gen(seed);
  GraphSnapshot::Options opt;
  opt.weight_seed = seed ^ 0x55ULL;
  opt.max_weight = 9;
  return GraphSnapshot::make(graph::connected_gnm(n, 3 * n, gen), opt);
}

std::vector<QueryRequest> mixed_batch(std::uint32_t count) {
  std::vector<QueryRequest> batch;
  for (std::uint32_t i = 0; i < count; ++i) {
    QueryRequest q;
    q.id = 100 + i;
    q.kind = static_cast<QueryKind>(i % 4);
    q.beta = (i % 3 == 0) ? 0.5 : 1.0;
    q.karger_trials = (i % 8 == 3) ? 8 : 0;
    batch.push_back(q);
  }
  return batch;
}

void expect_same_result(const QueryResult& a, const QueryResult& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.congestion, b.congestion);
  EXPECT_EQ(a.dilation, b.dilation);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.cardinality, b.cardinality);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.content_hash, b.content_hash);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(GraphSnapshot, PrecomputedFactsMatchDirectComputation) {
  Rng gen(5);
  graph::Graph g = graph::connected_gnm(120, 400, gen);
  const graph::Graph reference = g;  // Graph is a value type; keep a copy
  const auto snap = GraphSnapshot::make(std::move(g));

  EXPECT_EQ(snap->num_vertices(), reference.num_vertices());
  EXPECT_EQ(snap->num_edges(), reference.num_edges());
  EXPECT_TRUE(snap->connected());
  EXPECT_TRUE(snap->diameter_is_exact());
  EXPECT_EQ(snap->diameter_lb(), snap->diameter_ub());
  EXPECT_EQ(snap->diameter_ub(), graph::diameter_exact(reference));
  EXPECT_EQ(snap->diameter_estimate(), snap->diameter_ub());
  std::uint32_t max_deg = 0;
  for (graph::VertexId v = 0; v < reference.num_vertices(); ++v)
    max_deg = std::max(max_deg, reference.degree(v));
  EXPECT_EQ(snap->max_degree(), max_deg);
  EXPECT_EQ(snap->weights().size(), reference.num_edges());
  EXPECT_NE(snap->fingerprint(), 0u);
}

TEST(GraphSnapshot, LargeSnapshotGetsDiameterBracket) {
  Rng gen(6);
  GraphSnapshot::Options opt;
  opt.exact_diameter_max_vertices = 50;  // force the bracket path
  const auto snap = GraphSnapshot::make(graph::connected_gnm(200, 600, gen), opt);
  EXPECT_FALSE(snap->diameter_is_exact());
  EXPECT_GE(snap->diameter_ub(), snap->diameter_lb());
  EXPECT_GT(snap->diameter_lb(), 0u);
  EXPECT_EQ(snap->diameter_estimate(), snap->diameter_lb());
}

TEST(ShortcutService, BatchMatchesSequentialSingleQueryExecution) {
  const auto snap = small_snapshot();
  const ShortcutService svc(snap, 3);
  const auto batch = mixed_batch(12);

  const std::vector<QueryResult> batched = svc.run_batch(batch);
  ASSERT_EQ(batched.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const QueryResult alone = svc.run(batch[i]);
    expect_same_result(batched[i], alone);
    EXPECT_TRUE(batched[i].ok) << batched[i].error;
  }
}

TEST(ShortcutService, BitIdenticalAcrossThreadCounts) {
  const auto snap = small_snapshot();
  const ShortcutService svc(snap, 3);
  const auto batch = mixed_batch(12);

  ThreadOverrideGuard guard;
  set_num_threads(1);
  const std::vector<QueryResult> ref = svc.run_batch(batch);
  for (const unsigned threads : {2u, 8u}) {
    set_num_threads(threads);
    const std::vector<QueryResult> got = svc.run_batch(batch);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) expect_same_result(got[i], ref[i]);
  }
}

TEST(ShortcutService, BatchOrderAndCompositionInvariance) {
  const auto snap = small_snapshot();
  const ShortcutService svc(snap, 3);
  const auto batch = mixed_batch(10);
  const std::vector<QueryResult> ref = svc.run_batch(batch);

  // Reversed order: same per-id results.
  std::vector<QueryRequest> reversed(batch.rbegin(), batch.rend());
  const std::vector<QueryResult> rev_results = svc.run_batch(reversed);
  for (std::size_t i = 0; i < batch.size(); ++i)
    expect_same_result(rev_results[batch.size() - 1 - i], ref[i]);

  // A sub-batch: results do not depend on what else was in the batch.
  const std::vector<QueryRequest> sub(batch.begin() + 2, batch.begin() + 5);
  const std::vector<QueryResult> sub_results = svc.run_batch(sub);
  for (std::size_t i = 0; i < sub.size(); ++i) expect_same_result(sub_results[i], ref[i + 2]);
}

TEST(ShortcutService, TwoServicesShareOneSnapshot) {
  const auto snap = small_snapshot();
  const long base_use_count = snap.use_count();
  const ShortcutService a(snap, 9);
  const ShortcutService b(snap, 9);
  EXPECT_EQ(snap.use_count(), base_use_count + 2);  // shared, never copied
  EXPECT_EQ(&a.snapshot(), &b.snapshot());

  const auto batch = mixed_batch(8);
  const std::vector<QueryResult> ra = a.run_batch(batch);
  const std::vector<QueryResult> rb = b.run_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) expect_same_result(ra[i], rb[i]);
}

TEST(ShortcutService, ConcurrentBatchesFromTwoCallerThreads) {
  const auto snap = small_snapshot();
  const ShortcutService a(snap, 9);
  const ShortcutService b(snap, 9);
  const auto batch_a = mixed_batch(8);
  auto batch_b = mixed_batch(8);
  std::reverse(batch_b.begin(), batch_b.end());

  // Sequential references first.
  const std::vector<QueryResult> ref_a = a.run_batch(batch_a);
  const std::vector<QueryResult> ref_b = b.run_batch(batch_b);

  // Then both batches at once from two caller threads: the pool serializes
  // the batches, the snapshot is shared read-only, and the interleaving
  // must not leak into any result.
  std::vector<QueryResult> got_a, got_b;
  std::thread ta([&] { got_a = a.run_batch(batch_a); });
  std::thread tb([&] { got_b = b.run_batch(batch_b); });
  ta.join();
  tb.join();
  ASSERT_EQ(got_a.size(), ref_a.size());
  ASSERT_EQ(got_b.size(), ref_b.size());
  for (std::size_t i = 0; i < ref_a.size(); ++i) expect_same_result(got_a[i], ref_a[i]);
  for (std::size_t i = 0; i < ref_b.size(); ++i) expect_same_result(got_b[i], ref_b[i]);
}

TEST(ShortcutService, DifferentIdsGiveIndependentStreams) {
  const auto snap = small_snapshot();
  const ShortcutService svc(snap, 3);
  QueryRequest q1;
  q1.id = 1;
  q1.kind = QueryKind::kShortcutQuality;
  QueryRequest q2 = q1;
  q2.id = 2;
  const QueryResult r1 = svc.run(q1);
  const QueryResult r2 = svc.run(q2);
  // Same parameters, different streams: the sampled partitions/coins differ
  // (content hashes collide with probability ~2^-64).
  EXPECT_NE(r1.content_hash, r2.content_hash);
  // And the same id twice is bitwise-reproducible.
  expect_same_result(r1, svc.run(q1));
}

TEST(ShortcutService, RunInsideParallelRegionIsRejected) {
  // Misuse surfaces as a throw, not as a deterministic ok=false result:
  // queries run at top level or as parallel_tasks tasks only.
  const auto snap = small_snapshot();
  const ShortcutService svc(snap, 3);
  QueryRequest q;
  q.id = 1;
  EXPECT_THROW(parallel_for(0, 1, 1, [&](std::size_t) { svc.run(q); }),
               std::invalid_argument);
}

TEST(ShortcutService, DuplicateIdsInBatchAreRejected) {
  const auto snap = small_snapshot();
  const ShortcutService svc(snap, 3);
  auto batch = mixed_batch(4);
  batch[3].id = batch[0].id;
  EXPECT_THROW(svc.run_batch(batch), std::invalid_argument);
}

TEST(ShortcutService, QueryErrorsAreCapturedAndDeterministic) {
  // A disconnected snapshot: mincut queries must fail identically at every
  // thread count, not crash the batch.
  graph::GraphBuilder b(10);
  for (graph::VertexId v = 0; v + 1 < 5; ++v) b.add_edge(v, v + 1);
  for (graph::VertexId v = 5; v + 1 < 10; ++v) b.add_edge(v, v + 1);
  const auto snap = GraphSnapshot::make(std::move(b).build());
  EXPECT_FALSE(snap->connected());

  const ShortcutService svc(snap, 3);
  QueryRequest q;
  q.id = 7;
  q.kind = QueryKind::kMincut;
  q.karger_trials = 0;  // sparsified requires connectivity

  ThreadOverrideGuard guard;
  set_num_threads(1);
  const QueryResult ref = svc.run_batch({q})[0];
  EXPECT_FALSE(ref.ok);
  EXPECT_FALSE(ref.error.empty());
  set_num_threads(4);
  expect_same_result(svc.run_batch({q})[0], ref);
}

}  // namespace
