// Tests for the distributed shortcut construction pipeline on the CONGEST
// simulator: success, coverage of every large part, round accounting, the
// diameter-guessing variant, and message accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "core/distributed.hpp"
#include "core/shortcut.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace lcs::core {
namespace {

DistributedOptions opts(unsigned diameter, std::uint64_t seed = 1) {
  DistributedOptions o;
  o.diameter = diameter;
  o.seed = seed;
  return o;
}

TEST(Distributed, SucceedsOnHardInstance) {
  const auto hi = graph::hard_instance(400, 4);
  const DistributedOutcome out = build_distributed(hi.g, hi.paths, opts(4));
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.num_large, hi.paths.num_parts());
  EXPECT_GT(out.rounds.total(), 0u);
  EXPECT_GT(out.messages, 0u);
}

TEST(Distributed, ConstructedShortcutsCoverParts) {
  const auto hi = graph::hard_instance(400, 4);
  const DistributedOutcome out = build_distributed(hi.g, hi.paths, opts(4));
  ASSERT_TRUE(out.success);
  const QualityReport rep = measure_quality(hi.g, hi.paths, out.shortcuts);
  EXPECT_TRUE(rep.all_covered);
  // Dilation within the verified truncation depth bracket.
  EXPECT_LE(rep.max_cover_radius, out.depth_cap);
}

TEST(Distributed, DiameterEstimateIsTwoApproximation) {
  const auto hi = graph::hard_instance(400, 6);
  const DistributedOutcome out = build_distributed(hi.g, hi.paths, opts(6));
  EXPECT_GE(out.diameter_estimate, 6u);       // 2*ecc >= D
  EXPECT_LE(out.diameter_estimate, 2 * 6u);   // 2*ecc <= 2D
}

TEST(Distributed, StageRoundsPlausible) {
  const auto hi = graph::hard_instance(400, 4);
  const DistributedOutcome out = build_distributed(hi.g, hi.paths, opts(4));
  // Stage 1 is a BFS: ~ecc rounds.
  EXPECT_LE(out.rounds.global_bfs, 4u + 3u);
  EXPECT_GT(out.rounds.part_detection, 0u);
  EXPECT_GT(out.rounds.numbering, 0u);
  EXPECT_GT(out.rounds.multi_bfs, 0u);
  EXPECT_EQ(out.rounds.total(), out.rounds.global_bfs + out.rounds.part_detection +
                                    out.rounds.numbering + out.rounds.sr_broadcast +
                                    out.rounds.multi_bfs + out.rounds.verification);
}

TEST(Distributed, SmallPartsSkipped) {
  Rng rng(3);
  const graph::Graph g = graph::connected_gnm(200, 420, rng);
  const graph::Partition parts = graph::forest_partition(g, 2, rng);
  const DistributedOutcome out = build_distributed(g, parts, opts(6));
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.num_large, 0u);
  for (const auto& h : out.shortcuts.h) EXPECT_TRUE(h.empty());
}

TEST(Distributed, LargenessIsRadiusBased) {
  // A star-shaped part has 300 vertices but radius <= 2 from any leader —
  // far below the detection depth k_D — so the operational test classifies
  // it "small" (a size-based test would call it large).  No shortcut needed.
  const graph::Graph g = graph::star_graph(300);
  graph::Partition parts;
  parts.parts.resize(1);
  for (graph::VertexId v = 0; v < 300; ++v) parts.parts[0].push_back(v);
  const DistributedOutcome out = build_distributed(g, parts, opts(4));
  EXPECT_TRUE(out.success);
  EXPECT_GT(out.params.large_threshold, 2u);  // k_4(300) ~ 6.7
  EXPECT_EQ(out.num_large, 0u);
}

TEST(Distributed, DeterministicForSeed) {
  const auto hi = graph::hard_instance(350, 4);
  const DistributedOutcome a = build_distributed(hi.g, hi.paths, opts(4, 9));
  const DistributedOutcome b = build_distributed(hi.g, hi.paths, opts(4, 9));
  EXPECT_EQ(a.shortcuts.h, b.shortcuts.h);
  EXPECT_EQ(a.rounds.total(), b.rounds.total());
  EXPECT_EQ(a.messages, b.messages);
}

TEST(Distributed, RejectsInvalidPartition) {
  const auto hi = graph::hard_instance(350, 4);
  graph::Partition bad;
  bad.parts = {{0, 1}, {1, 2}};
  EXPECT_THROW(build_distributed(hi.g, bad, opts(4)), std::invalid_argument);
}

TEST(Distributed, MessagesScaleWithShortcutSize) {
  const auto hi = graph::hard_instance(400, 4);
  DistributedOptions lo = opts(4, 5);
  lo.beta = 0.2;
  DistributedOptions hi_opt = opts(4, 5);
  hi_opt.beta = 1.0;
  const DistributedOutcome a = build_distributed(hi.g, hi.paths, lo);
  const DistributedOutcome b = build_distributed(hi.g, hi.paths, hi_opt);
  EXPECT_LT(a.messages, b.messages);
}

TEST(DistributedGuessing, TerminatesAndSucceeds) {
  const auto hi = graph::hard_instance(400, 4);
  DistributedOptions o;
  o.seed = 2;
  const DistributedOutcome out = build_distributed_guessing(hi.g, hi.paths, o);
  EXPECT_TRUE(out.success);
  EXPECT_GE(out.attempts, 1u);
  const QualityReport rep = measure_quality(hi.g, hi.paths, out.shortcuts);
  EXPECT_TRUE(rep.all_covered);
}

TEST(DistributedGuessing, AttemptsBoundedByRange) {
  const auto hi = graph::hard_instance(400, 4);
  DistributedOptions o;
  const DistributedOutcome out = build_distributed_guessing(hi.g, hi.paths, o);
  // Guesses sweep max(3, ecc)..2*ecc, so attempts <= ecc + 2.
  const std::uint32_t ecc = graph::eccentricity(hi.g, 0);
  EXPECT_LE(out.attempts, ecc + 2);
}

TEST(DistributedGuessing, AccumulatesAtLeastSingleRunRounds) {
  const auto hi = graph::hard_instance(400, 4);
  DistributedOptions o;
  o.seed = 4;
  const DistributedOutcome guess = build_distributed_guessing(hi.g, hi.paths, o);
  const DistributedOutcome direct = build_distributed(hi.g, hi.paths, opts(4, 4));
  EXPECT_GE(guess.rounds.total() + 4, direct.rounds.total());
}

TEST(Distributed, LayeredGraphFamily) {
  Rng rng(8);
  const graph::Graph g = graph::layered_random_graph(400, 5, 1.0, rng);
  const graph::Partition parts = graph::ball_partition(g, 12, rng);
  DistributedOptions o = opts(5, 11);
  const DistributedOutcome out = build_distributed(g, parts, o);
  EXPECT_TRUE(out.success);
  const QualityReport rep = measure_quality(g, parts, out.shortcuts);
  EXPECT_TRUE(rep.all_covered);
}

}  // namespace
}  // namespace lcs::core
