// Point-to-point engines (sssp/ch.hpp): the three engines — bidirectional
// Dijkstra, contraction hierarchies, and the KP-shortcut-assisted search —
// must return byte-identical distances on every (graph, weights, s, t), and
// CH preprocessing must be a deterministic pure function of its inputs.

#include <gtest/gtest.h>

#include <vector>

#include "core/kp.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "graph/weighted.hpp"
#include "sssp/ch.hpp"
#include "sssp/sssp.hpp"

namespace lcs {
namespace {

using graph::Graph;
using graph::VertexId;

struct Instance {
  Graph g;
  graph::EdgeWeights w;
};

std::vector<Instance> test_instances() {
  std::vector<Instance> out;
  Rng rng(99);
  const auto add = [&](Graph g) {
    Rng wrng(g.num_vertices() ^ 0x5eedULL);
    graph::EdgeWeights w = graph::random_weights(g, 16, wrng);
    out.push_back({std::move(g), std::move(w)});
  };
  add(graph::path_graph(17));
  add(graph::grid_graph(6, 7));
  add(graph::dumbbell_graph(5, 4));
  add(graph::random_tree(40, rng));
  add(graph::connected_gnm(60, 120, rng));
  add(graph::road_network(80, rng));
  add(graph::transit_network(70, 5, rng));
  // Disconnected: two components, so unreachable pairs exist.
  {
    graph::GraphBuilder b(12);
    for (VertexId v = 0; v + 1 < 6; ++v) b.add_edge(v, v + 1);
    for (VertexId v = 6; v + 1 < 12; ++v) b.add_edge(v, v + 1);
    add(std::move(b).build());
  }
  return out;
}

sssp::ShortcutOverlay overlay_for(const Instance& in) {
  Rng prng(7);
  const std::uint32_t seeds = std::max(2u, in.g.num_vertices() / 8);
  const graph::Partition parts = graph::ball_partition(in.g, seeds, prng);
  core::KpOptions opt;
  opt.seed = 21;
  opt.diameter = 6;
  const core::KpBuildResult built = core::build_kp_shortcuts(in.g, parts, opt);
  return sssp::build_shortcut_overlay(in.g, in.w, parts, built.shortcuts);
}

TEST(ChTest, AllThreeEnginesMatchDijkstraOnEveryFamily) {
  for (const Instance& in : test_instances()) {
    const sssp::ChIndex ch = sssp::build_ch(in.g, in.w);
    const sssp::ShortcutOverlay ov = overlay_for(in);
    const std::uint32_t n = in.g.num_vertices();
    Rng qrng(3);
    for (int q = 0; q < 40; ++q) {
      const auto s = static_cast<VertexId>(qrng.uniform(n));
      const auto t = static_cast<VertexId>(qrng.uniform(n));
      const std::uint64_t want = sssp::dijkstra(in.g, in.w, s).dist[t];
      EXPECT_EQ(sssp::bidirectional_dijkstra(in.g, in.w, s, t).distance, want)
          << "bidi n=" << n << " s=" << s << " t=" << t;
      EXPECT_EQ(sssp::ch_query(ch, s, t).distance, want)
          << "ch n=" << n << " s=" << s << " t=" << t;
      EXPECT_EQ(sssp::assisted_query(in.g, in.w, ov, s, t).distance, want)
          << "assisted n=" << n << " s=" << s << " t=" << t;
    }
  }
}

TEST(ChTest, SourceEqualsTargetIsZero) {
  const Graph g = graph::grid_graph(4, 4);
  Rng wrng(1);
  const graph::EdgeWeights w = graph::random_weights(g, 9, wrng);
  const sssp::ChIndex ch = sssp::build_ch(g, w);
  EXPECT_EQ(sssp::bidirectional_dijkstra(g, w, 5, 5).distance, 0u);
  EXPECT_EQ(sssp::ch_query(ch, 5, 5).distance, 0u);
}

TEST(ChTest, UnreachablePairsReportInfDist) {
  graph::GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.add_edge(4, 5);
  const Graph g = std::move(b).build();
  const graph::EdgeWeights w(g.num_edges(), 2);
  const sssp::ChIndex ch = sssp::build_ch(g, w);
  EXPECT_EQ(sssp::bidirectional_dijkstra(g, w, 0, 4).distance, sssp::kInfDist);
  EXPECT_EQ(sssp::ch_query(ch, 0, 4).distance, sssp::kInfDist);
}

TEST(ChTest, BuildIsDeterministic) {
  Rng rng(5);
  const Graph g = graph::road_network(120, rng);
  Rng wrng(8);
  const graph::EdgeWeights w = graph::random_weights(g, 12, wrng);
  const sssp::ChIndex a = sssp::build_ch(g, w);
  const sssp::ChIndex b = sssp::build_ch(g, w);
  EXPECT_EQ(a, b);  // identical vectors, not merely equivalent answers
  EXPECT_EQ(a.n, g.num_vertices());
  EXPECT_EQ(a.up_offsets.back(), a.up_arcs.size());
  // Ranks are a permutation of [0, n).
  std::vector<bool> seen(a.n, false);
  for (const std::uint32_t r : a.rank) {
    ASSERT_LT(r, a.n);
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
  // Every arc points strictly upward.
  for (VertexId v = 0; v < a.n; ++v)
    for (std::uint64_t i = a.up_offsets[v]; i < a.up_offsets[v + 1]; ++i)
      EXPECT_GT(a.rank[a.up_arcs[i].to], a.rank[v]);
}

TEST(ChTest, TightWitnessLimitsPreserveExactness) {
  // Starved witness searches may only add extra shortcuts, never lose
  // correctness.
  Rng rng(11);
  const Graph g = graph::connected_gnm(50, 100, rng);
  Rng wrng(12);
  const graph::EdgeWeights w = graph::random_weights(g, 16, wrng);
  sssp::ChOptions tight;
  tight.witness_settle_limit = 1;
  tight.witness_hop_limit = 1;
  const sssp::ChIndex loose = sssp::build_ch(g, w);
  const sssp::ChIndex starved = sssp::build_ch(g, w, tight);
  EXPECT_GE(starved.num_shortcuts, loose.num_shortcuts);
  for (VertexId s = 0; s < g.num_vertices(); s += 7) {
    const sssp::SsspResult ref = sssp::dijkstra(g, w, s);
    for (VertexId t = 0; t < g.num_vertices(); t += 5)
      EXPECT_EQ(sssp::ch_query(starved, s, t).distance, ref.dist[t]);
  }
}

TEST(ChTest, ChSettlesFewerNodesThanBidiOnLargeRoadNetwork) {
  Rng rng(17);
  const Graph g = graph::road_network(4000, rng);
  Rng wrng(18);
  const graph::EdgeWeights w = graph::random_weights(g, 16, wrng);
  const sssp::ChIndex ch = sssp::build_ch(g, w);
  Rng qrng(19);
  std::uint64_t bidi_settled = 0;
  std::uint64_t ch_settled = 0;
  for (int q = 0; q < 20; ++q) {
    const auto s = static_cast<VertexId>(qrng.uniform(g.num_vertices()));
    const auto t = static_cast<VertexId>(qrng.uniform(g.num_vertices()));
    const sssp::PointToPointResult a = sssp::bidirectional_dijkstra(g, w, s, t);
    const sssp::PointToPointResult b = sssp::ch_query(ch, s, t);
    EXPECT_EQ(a.distance, b.distance);
    bidi_settled += a.settled;
    ch_settled += b.settled;
  }
  EXPECT_LT(ch_settled, bidi_settled);
}

TEST(ChTest, SingletonAndEmptyPartitionsYieldUsableOverlay) {
  const Graph g = graph::path_graph(9);
  const graph::EdgeWeights w(g.num_edges(), 3);
  graph::Partition parts;
  parts.parts = {{0}, {1, 2, 3}, {}, {4, 5, 6, 7, 8}};
  core::ShortcutSet sc;
  sc.h.resize(parts.parts.size());
  const sssp::ShortcutOverlay ov = sssp::build_shortcut_overlay(g, w, parts, sc);
  EXPECT_EQ(ov.n, g.num_vertices());
  for (VertexId s = 0; s < 9; ++s)
    for (VertexId t = 0; t < 9; ++t)
      EXPECT_EQ(sssp::assisted_query(g, w, ov, s, t).distance,
                sssp::dijkstra(g, w, s).dist[t]);
}

TEST(ChTest, JumpArcLengthsAreExactInsideAugmentedSubgraph) {
  // On a tree with whole-graph parts, the jump arcs are exactly the true
  // leader distances, so the overlay answers leader queries in one hop.
  Rng rng(23);
  const Graph g = graph::random_tree(30, rng);
  Rng wrng(24);
  const graph::EdgeWeights w = graph::random_weights(g, 10, wrng);
  graph::Partition parts;
  parts.parts.resize(1);
  for (VertexId v = 0; v < g.num_vertices(); ++v) parts.parts[0].push_back(v);
  core::ShortcutSet sc;
  sc.h.resize(1);
  const sssp::ShortcutOverlay ov = sssp::build_shortcut_overlay(g, w, parts, sc);
  const VertexId leader = parts.leader(0);
  const sssp::SsspResult ref = sssp::dijkstra(g, w, leader);
  EXPECT_EQ(ov.num_jumps, 2ull * (g.num_vertices() - 1));
  for (std::uint64_t i = ov.offsets[leader]; i < ov.offsets[leader + 1]; ++i)
    EXPECT_EQ(ov.arcs[i].len, ref.dist[ov.arcs[i].to]);
}

}  // namespace
}  // namespace lcs
