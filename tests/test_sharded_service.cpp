// Sharded query service coverage (PR 7).
//
// The contract under test is determinism contract point 7: shard placement
// never changes digests.  The same batch routed across 1, 2 or 4 shards —
// in-process LocalShards or RPC loopback shards behind a real ShardServer
// — must produce digests bit-identical to a plain ShortcutService, at 1, 2
// and 8 threads.  Around that gate: fault injection (a killed shard yields
// deterministic per-query ok=false captures and leaves other shards'
// queries untouched), duplicate-id rejection naming the offending id on
// both the service and the router boundary, and fingerprint/seed coherence
// rejection of a mixed fleet.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "rpc/shard.hpp"
#include "service/fault.hpp"
#include "service/service.hpp"
#include "service/sharded.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace lcs;
using service::FaultPlan;
using service::FaultyShard;
using service::GraphSnapshot;
using service::LocalShard;
using service::QueryKind;
using service::QueryRequest;
using service::QueryResult;
using service::ShardBackend;
using service::ShardRouter;
using service::ShardUnavailable;
using service::ShortcutService;

constexpr std::uint64_t kSeed = 42;

std::shared_ptr<const GraphSnapshot> test_snapshot(std::uint64_t graph_seed = 5) {
  Rng rng(graph_seed);
  return GraphSnapshot::build(graph::connected_gnm(160, 480, rng), {});
}

/// The reference batch: every kind, explicit and defaulted knobs.
std::vector<QueryRequest> mixed_batch(std::size_t count, std::uint64_t first_id = 1000) {
  std::vector<QueryRequest> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    QueryRequest q;
    q.id = first_id + i;
    switch (i % 5) {
      case 0: q.kind = QueryKind::kShortcutQuality; break;
      case 1: q.kind = QueryKind::kShortcutBuild; break;
      case 2: q.kind = QueryKind::kMst; break;
      case 3: q.kind = QueryKind::kMincut; break;
      default: q.kind = QueryKind::kPointToPoint; break;
    }
    q.beta = 0.5 + 0.25 * static_cast<double>(i % 3);
    if (q.kind == QueryKind::kMincut) {
      if (i % 8 == 3)
        q.karger_trials = 4;
      else
        q.eps = 0.5;
    }
    // Endpoints below the fixture size (n = 160); harmless for other kinds.
    q.s = static_cast<std::uint32_t>((i * 37 + 1) % 160);
    q.t = static_cast<std::uint32_t>((i * 61 + 13) % 160);
    batch.push_back(q);
  }
  return batch;
}

std::vector<std::uint64_t> digests(const std::vector<QueryResult>& results) {
  std::vector<std::uint64_t> out;
  out.reserve(results.size());
  for (const QueryResult& r : results) out.push_back(r.digest());
  return out;
}

/// A router over `k` LocalShards, each with its own service instance over
/// the shared snapshot (services with one seed are interchangeable).
ShardRouter local_router(const std::shared_ptr<const GraphSnapshot>& snap, std::size_t k) {
  std::vector<std::unique_ptr<ShardBackend>> backends;
  for (std::size_t s = 0; s < k; ++s)
    backends.push_back(std::make_unique<LocalShard>(
        std::make_shared<const ShortcutService>(snap, kSeed)));
  return ShardRouter(std::move(backends));
}

// ---------------------------------------------------------------------------
// The placement digest gate

TEST(ShardedService, PlacementNeverChangesDigests) {
  const auto snap = test_snapshot();
  const auto batch = mixed_batch(32);
  const ShortcutService plain(snap, kSeed);
  const std::vector<std::uint64_t> expected = digests(plain.run_batch(batch));
  for (const QueryResult& r : plain.run_batch(batch)) ASSERT_TRUE(r.ok) << r.error;

  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadOverrideGuard guard;
    set_num_threads(threads);
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      const ShardRouter router = local_router(snap, shards);
      EXPECT_EQ(router.fingerprint(), snap->fingerprint());
      const std::vector<QueryResult> results = router.run_batch(batch);
      ASSERT_EQ(results.size(), batch.size());
      for (std::size_t i = 0; i < results.size(); ++i)
        ASSERT_EQ(results[i].id, batch[i].id) << "caller order not preserved";
      EXPECT_EQ(digests(results), expected)
          << shards << " shards at " << threads << " threads diverged";
    }
  }
}

TEST(ShardedService, RpcLoopbackMatchesLocalDigests) {
  const auto snap = test_snapshot();
  const auto batch = mixed_batch(24);
  const ShortcutService plain(snap, kSeed);
  const std::vector<std::uint64_t> expected = digests(plain.run_batch(batch));

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("lcs-sharded-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  {
    std::vector<std::unique_ptr<rpc::ShardServer>> servers;
    std::vector<std::unique_ptr<ShardBackend>> backends;
    for (int s = 0; s < 2; ++s) {
      const std::string sock = (dir / ("s" + std::to_string(s) + ".sock")).string();
      const auto ep = rpc::Endpoint::parse("unix:" + sock);
      servers.push_back(std::make_unique<rpc::ShardServer>(
          std::make_shared<const ShortcutService>(snap, kSeed), ep));
      backends.push_back(std::make_unique<rpc::RpcShard>(servers.back()->endpoint()));
    }
    const ShardRouter router(std::move(backends));
    EXPECT_EQ(router.fingerprint(), snap->fingerprint());
    EXPECT_EQ(router.seed(), kSeed);
    EXPECT_EQ(digests(router.run_batch(batch)), expected);
    // A second batch over the same connections: the protocol is reusable.
    EXPECT_EQ(digests(router.run_batch(batch)), expected);
    for (auto& server : servers) server->stop();
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Fault injection

TEST(ShardedService, KilledShardCapturesDeterministically) {
  const auto snap = test_snapshot();
  const auto batch = mixed_batch(32);
  const ShortcutService plain(snap, kSeed);
  const std::vector<std::uint64_t> expected = digests(plain.run_batch(batch));

  const std::size_t kShards = 3;
  const std::size_t victim = 1;
  const auto run_with_victim_killed = [&] {
    std::vector<std::unique_ptr<ShardBackend>> backends;
    LocalShard* victim_ptr = nullptr;
    for (std::size_t s = 0; s < kShards; ++s) {
      auto shard = std::make_unique<LocalShard>(
          std::make_shared<const ShortcutService>(snap, kSeed));
      if (s == victim) victim_ptr = shard.get();
      backends.push_back(std::move(shard));
    }
    const ShardRouter router(std::move(backends));
    victim_ptr->kill();  // dies after attach, before the batch: mid-flight
    return router.run_batch(batch);
  };

  const std::vector<QueryResult> first = run_with_victim_killed();
  ASSERT_EQ(first.size(), batch.size());
  std::size_t affected = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (service::shard_of(batch[i].id, kShards) == victim) {
      ++affected;
      EXPECT_FALSE(first[i].ok);
      EXPECT_EQ(first[i].error, "shard 1 unavailable: shard killed");
      EXPECT_EQ(first[i].id, batch[i].id);
      EXPECT_EQ(first[i].kind, batch[i].kind);
    } else {
      EXPECT_TRUE(first[i].ok) << first[i].error;
      EXPECT_EQ(first[i].digest(), expected[i]) << "healthy shard result perturbed";
    }
  }
  ASSERT_GT(affected, 0u) << "batch never hit the victim shard";
  ASSERT_LT(affected, batch.size());

  // The capture itself is deterministic: digests (which cover ok and the
  // error text) are identical run to run.
  EXPECT_EQ(digests(run_with_victim_killed()), digests(first));
}

TEST(ShardedService, DeadRpcShardCapturesAndOthersSurvive) {
  const auto snap = test_snapshot();
  const auto batch = mixed_batch(24);
  const ShortcutService plain(snap, kSeed);
  const std::vector<std::uint64_t> expected = digests(plain.run_batch(batch));

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("lcs-sharded-dead-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  {
    std::vector<std::unique_ptr<rpc::ShardServer>> servers;
    std::vector<std::unique_ptr<ShardBackend>> backends;
    for (int s = 0; s < 2; ++s) {
      const std::string sock = (dir / ("s" + std::to_string(s) + ".sock")).string();
      const auto ep = rpc::Endpoint::parse("unix:" + sock);
      servers.push_back(std::make_unique<rpc::ShardServer>(
          std::make_shared<const ShortcutService>(snap, kSeed), ep));
      backends.push_back(std::make_unique<rpc::RpcShard>(servers.back()->endpoint()));
    }
    const ShardRouter router(std::move(backends));
    servers[1]->stop();  // shard process 1 dies after attach

    const std::vector<QueryResult> results = router.run_batch(batch);
    ASSERT_EQ(results.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (service::shard_of(batch[i].id, 2) == 1) {
        EXPECT_FALSE(results[i].ok);
        EXPECT_EQ(results[i].error.rfind("shard 1 unavailable: rpc: connection", 0), 0u)
            << results[i].error;
      } else {
        EXPECT_TRUE(results[i].ok) << results[i].error;
        EXPECT_EQ(results[i].digest(), expected[i]);
      }
    }
    servers[0]->stop();
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Batch-contract and coherence rejection

TEST(ShardedService, DuplicateIdsNameTheOffenderAtTheServiceBoundary) {
  const auto snap = test_snapshot();
  const ShortcutService plain(snap, kSeed);
  auto batch = mixed_batch(6);
  batch[4].id = batch[1].id;  // duplicate 1001
  try {
    (void)plain.run_batch(batch);
    FAIL() << "duplicate ids accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate query id 1001"), std::string::npos)
        << e.what();
  }
}

TEST(ShardedService, DuplicateIdsAreRejectedAtTheRouterBoundary) {
  const auto snap = test_snapshot();
  const ShardRouter router = local_router(snap, 2);
  auto batch = mixed_batch(6);
  batch[5].id = batch[0].id;  // duplicate 1000 — lands on different shards,
                              // so only a router-level check can see it
  try {
    (void)router.run_batch(batch);
    FAIL() << "duplicate ids accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate query id 1000"), std::string::npos)
        << e.what();
  }
}

TEST(ShardedService, ServerRejectsDuplicateIdsWithAnErrorFrame) {
  const auto snap = test_snapshot();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("lcs-sharded-dup-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  {
    rpc::ShardServer server(std::make_shared<const ShortcutService>(snap, kSeed),
                            rpc::Endpoint::parse("unix:" + (dir / "s.sock").string()));
    rpc::RpcShard shard(server.endpoint());
    auto batch = mixed_batch(4);
    batch[3].id = batch[2].id;
    shard.send_batch(batch);  // bypasses the router's own check
    try {
      (void)shard.gather();
      FAIL() << "server accepted duplicate ids";
    } catch (const ShardUnavailable& e) {
      EXPECT_NE(std::string(e.what()).find("duplicate query id 1002"), std::string::npos)
          << e.what();
    }
    // The error frame did not poison the connection.
    shard.send_batch(mixed_batch(4));
    EXPECT_EQ(shard.gather().size(), 4u);
    server.stop();
  }
  std::filesystem::remove_all(dir);
}

TEST(ShardedService, MixedFleetIsRejectedAtAttach) {
  const auto snap_a = test_snapshot(5);
  const auto snap_b = test_snapshot(6);
  ASSERT_NE(snap_a->fingerprint(), snap_b->fingerprint());

  std::vector<std::unique_ptr<ShardBackend>> mixed_fingerprints;
  mixed_fingerprints.push_back(std::make_unique<LocalShard>(
      std::make_shared<const ShortcutService>(snap_a, kSeed)));
  mixed_fingerprints.push_back(std::make_unique<LocalShard>(
      std::make_shared<const ShortcutService>(snap_b, kSeed)));
  try {
    const ShardRouter router(std::move(mixed_fingerprints));
    FAIL() << "mixed-fingerprint fleet accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos) << e.what();
  }

  std::vector<std::unique_ptr<ShardBackend>> mixed_seeds;
  mixed_seeds.push_back(std::make_unique<LocalShard>(
      std::make_shared<const ShortcutService>(snap_a, kSeed)));
  mixed_seeds.push_back(std::make_unique<LocalShard>(
      std::make_shared<const ShortcutService>(snap_a, kSeed + 1)));
  EXPECT_THROW(ShardRouter(std::move(mixed_seeds)), std::invalid_argument);
}

TEST(ShardedService, PlacementIsAPureFunction) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{7}}) {
    for (std::uint64_t id = 0; id < 200; ++id) {
      const std::size_t s = service::shard_of(id, n);
      EXPECT_LT(s, n);
      EXPECT_EQ(s, service::shard_of(id, n));
    }
  }
  // All shards of a small fleet actually receive work under sequential ids.
  std::vector<bool> hit(4, false);
  for (std::uint64_t id = 1000; id < 1032; ++id) hit[service::shard_of(id, 4)] = true;
  for (const bool h : hit) EXPECT_TRUE(h);
}

// ---------------------------------------------------------------------------
// Replicated placement (PR 8)

TEST(ShardedService, ReplicaListsArePureDistinctAndReduceToShardOf) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{5}, std::size_t{8}}) {
    for (std::uint64_t id = 500; id < 700; ++id) {
      // R = 1 is exactly the legacy placement.
      const std::vector<std::size_t> one = service::replicas_of(id, n, 1);
      ASSERT_EQ(one.size(), 1u);
      EXPECT_EQ(one[0], service::shard_of(id, n));
      for (const std::size_t r : {std::size_t{2}, std::size_t{3}, n + 4}) {
        const std::vector<std::size_t> prefs = service::replicas_of(id, n, r);
        ASSERT_EQ(prefs.size(), std::min(r, n)) << "not clamped to the fleet";
        EXPECT_EQ(prefs[0], service::shard_of(id, n)) << "primary must come first";
        std::vector<bool> seen(n, false);
        for (const std::size_t s : prefs) {
          ASSERT_LT(s, n);
          EXPECT_FALSE(seen[s]) << "replica list repeats shard " << s;
          seen[s] = true;
        }
        EXPECT_EQ(prefs, service::replicas_of(id, n, r)) << "not a pure function";
      }
    }
  }
  // Rendezvous ranking spreads fallbacks: with 4 shards, the first fallback
  // of ids homed on shard 0 must not all pile onto one neighbor.
  std::vector<bool> fallback_hit(4, false);
  for (std::uint64_t id = 0; id < 4000; ++id) {
    const std::vector<std::size_t> prefs = service::replicas_of(id, 4, 2);
    if (prefs[0] == 0) fallback_hit[prefs[1]] = true;
  }
  EXPECT_FALSE(fallback_hit[0]);
  for (const std::size_t s : {std::size_t{1}, std::size_t{2}, std::size_t{3}})
    EXPECT_TRUE(fallback_hit[s]) << "fallbacks never land on shard " << s;
}

/// A router over `k` LocalShards with explicit options; `shards` receives
/// non-owning handles for kill()/revive().
ShardRouter replicated_router(const std::shared_ptr<const GraphSnapshot>& snap, std::size_t k,
                              service::RouterOptions options,
                              std::vector<LocalShard*>* shards = nullptr) {
  std::vector<std::unique_ptr<ShardBackend>> backends;
  for (std::size_t s = 0; s < k; ++s) {
    auto shard =
        std::make_unique<LocalShard>(std::make_shared<const ShortcutService>(snap, kSeed));
    if (shards != nullptr) shards->push_back(shard.get());
    backends.push_back(std::move(shard));
  }
  return ShardRouter(std::move(backends), options);
}

// The tentpole gate: with R=2, killing ANY single shard mid-run yields zero
// ok=false results and digests bit-identical to the all-healthy fleet — at
// 1, 2 and 8 threads.  Failover is determinism-safe because every result is
// a pure function of (snapshot fingerprint, seed, id).
TEST(ShardedService, ReplicatedFailoverNeverChangesDigests) {
  const auto snap = test_snapshot();
  const auto batch = mixed_batch(32);
  const ShortcutService plain(snap, kSeed);
  const std::vector<std::uint64_t> expected = digests(plain.run_batch(batch));

  service::RouterOptions options;
  options.replicas = 2;
  const std::size_t kShards = 3;
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadOverrideGuard guard;
    set_num_threads(threads);
    for (std::size_t victim = 0; victim < kShards; ++victim) {
      std::vector<LocalShard*> shards;
      const ShardRouter router = replicated_router(snap, kShards, options, &shards);
      shards[victim]->kill();  // dies after attach, before the batch: mid-flight
      const std::vector<QueryResult> results = router.run_batch(batch);
      ASSERT_EQ(results.size(), batch.size());
      std::size_t failed_over = 0;
      for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].ok) << "victim " << victim << ": " << results[i].error;
        EXPECT_EQ(results[i].digest(), expected[i])
            << "failover changed digest of id " << results[i].id;
        ASSERT_GE(results[i].attempts, 1u);
        if (results[i].served_by_replica > 0) ++failed_over;
      }
      EXPECT_GT(failed_over, 0u) << "victim " << victim << " never had traffic to fail over";
      EXPECT_FALSE(router.health()[victim].up);
    }
  }
}

// Determinism-contract points 7 and 8 for the s–t kind specifically: an
// all-kPointToPoint batch digests identically through every placement
// (1/2/4 shards) and through R=2 failover with any single victim, at 1, 2
// and 8 threads, versus the single-process oracle.
TEST(ShardedService, PointToPointPlacementAndFailoverMatchOracle) {
  const auto snap = test_snapshot();
  std::vector<QueryRequest> batch;
  Rng pick(31);
  for (std::uint32_t i = 0; i < 24; ++i) {
    QueryRequest q;
    q.id = 7000 + i;
    q.kind = QueryKind::kPointToPoint;
    q.s = static_cast<std::uint32_t>(pick.uniform(snap->num_vertices()));
    q.t = static_cast<std::uint32_t>(pick.uniform(snap->num_vertices()));
    batch.push_back(q);
  }
  const ShortcutService plain(snap, kSeed);
  const std::vector<std::uint64_t> expected = digests(plain.run_batch(batch));
  for (const QueryResult& r : plain.run_batch(batch)) ASSERT_TRUE(r.ok) << r.error;

  service::RouterOptions replicated;
  replicated.replicas = 2;
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadOverrideGuard guard;
    set_num_threads(threads);
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      const ShardRouter router = local_router(snap, shards);
      EXPECT_EQ(digests(router.run_batch(batch)), expected)
          << shards << " shards at " << threads << " threads diverged";
    }
    for (std::size_t victim = 0; victim < 3; ++victim) {
      std::vector<LocalShard*> fleet;
      const ShardRouter router = replicated_router(snap, 3, replicated, &fleet);
      fleet[victim]->kill();
      const std::vector<QueryResult> results = router.run_batch(batch);
      for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].ok) << "victim " << victim << ": " << results[i].error;
        EXPECT_EQ(results[i].digest(), expected[i])
            << "failover changed s-t digest of id " << results[i].id;
      }
    }
  }
}

TEST(ShardedService, UnreplicatedCaptureIsStableAcrossBatches) {
  // With R=1 the legacy capture semantics hold batch after batch: the
  // down shard's stored failure text is reused verbatim while probes keep
  // failing, so every batch's capture is byte-identical.
  const auto snap = test_snapshot();
  const auto batch = mixed_batch(32);
  std::vector<LocalShard*> shards;
  const ShardRouter router = replicated_router(snap, 3, {}, &shards);
  shards[1]->kill();
  const std::vector<QueryResult> first = router.run_batch(batch);
  const std::vector<QueryResult> second = router.run_batch(batch);
  EXPECT_EQ(digests(first), digests(second));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (service::shard_of(batch[i].id, 3) != 1) continue;
    EXPECT_FALSE(second[i].ok);
    EXPECT_EQ(second[i].error, "shard 1 unavailable: shard killed");
  }
}

TEST(ShardedService, TotalReplicaGroupLossCapturesDeterministically) {
  const auto snap = test_snapshot();
  const auto batch = mixed_batch(24);
  service::RouterOptions options;
  options.replicas = 2;
  const auto run_all_dead = [&] {
    std::vector<LocalShard*> shards;
    const ShardRouter router = replicated_router(snap, 3, options, &shards);
    for (LocalShard* shard : shards) shard->kill();
    return router.run_batch(batch);
  };
  const std::vector<QueryResult> first = run_all_dead();
  for (const QueryResult& r : first) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("unavailable: shard killed"), std::string::npos) << r.error;
  }
  // Only total replica-group loss changes the failure pattern — and it does
  // so deterministically (contract point 8).
  EXPECT_EQ(digests(run_all_dead()), digests(first));
}

TEST(ShardedService, RetryBudgetBoundsFailover) {
  // retries = 0: a query is sent to its first live preference only; a live
  // failure is captured instead of failing over.
  const auto snap = test_snapshot();
  const auto batch = mixed_batch(32);
  service::RouterOptions options;
  options.replicas = 2;
  options.retries = 0;
  std::vector<LocalShard*> shards;
  const ShardRouter router = replicated_router(snap, 3, options, &shards);
  shards[1]->kill();
  const std::vector<QueryResult> results = router.run_batch(batch);
  std::size_t captured = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (service::shard_of(batch[i].id, 3) == 1) {
      ++captured;
      EXPECT_FALSE(results[i].ok);
      EXPECT_EQ(results[i].error, "shard 1 unavailable: shard killed");
      EXPECT_EQ(results[i].attempts, 1u) << "retries=0 must not fail over";
    } else {
      EXPECT_TRUE(results[i].ok) << results[i].error;
    }
  }
  EXPECT_GT(captured, 0u);
}

TEST(ShardedService, RevivedShardIsReattachedByTheNextBatchProbe) {
  const auto snap = test_snapshot();
  const auto batch = mixed_batch(32);
  const ShortcutService plain(snap, kSeed);
  const std::vector<std::uint64_t> expected = digests(plain.run_batch(batch));

  service::RouterOptions options;
  options.replicas = 2;
  std::vector<LocalShard*> shards;
  const ShardRouter router = replicated_router(snap, 3, options, &shards);
  shards[2]->kill();
  EXPECT_EQ(digests(router.run_batch(batch)), expected);  // batch 0: failover
  ASSERT_FALSE(router.health()[2].up);
  shards[2]->revive();
  // Batch 1 probes the down shard (first re-probe is the very next batch),
  // re-attaches it, and serves from the primary again.
  const std::vector<QueryResult> results = router.run_batch(batch);
  EXPECT_EQ(digests(results), expected);
  EXPECT_TRUE(router.health()[2].up);
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(results[i].served_by_replica, 0u) << "revived fleet must serve from primaries";
}

TEST(ShardedService, AttachToleratesDownShardsOnlyWhenReplicated) {
  const auto snap = test_snapshot();
  // R=1 keeps the legacy strictness: a dead shard fails attach.
  {
    std::vector<std::unique_ptr<ShardBackend>> backends;
    auto dead = std::make_unique<LocalShard>(std::make_shared<const ShortcutService>(snap, kSeed));
    dead->kill();
    backends.push_back(std::move(dead));
    backends.push_back(
        std::make_unique<LocalShard>(std::make_shared<const ShortcutService>(snap, kSeed)));
    EXPECT_THROW(ShardRouter(std::move(backends)), ShardUnavailable);
  }
  // R=2 marks it down and the first batch probes it (here: still dead, so
  // its queries fail over and the batch is clean).
  {
    service::RouterOptions options;
    options.replicas = 2;
    std::vector<std::unique_ptr<ShardBackend>> backends;
    auto dead = std::make_unique<LocalShard>(std::make_shared<const ShortcutService>(snap, kSeed));
    dead->kill();
    backends.push_back(std::move(dead));
    backends.push_back(
        std::make_unique<LocalShard>(std::make_shared<const ShortcutService>(snap, kSeed)));
    const ShardRouter router(std::move(backends), options);
    EXPECT_EQ(router.fingerprint(), snap->fingerprint());
    EXPECT_FALSE(router.health()[0].up);
    for (const QueryResult& r : router.run_batch(mixed_batch(16)))
      EXPECT_TRUE(r.ok) << r.error;
  }
  // A fleet with no reachable shard at all is rejected even replicated.
  {
    service::RouterOptions options;
    options.replicas = 2;
    std::vector<std::unique_ptr<ShardBackend>> backends;
    for (int s = 0; s < 2; ++s) {
      auto dead =
          std::make_unique<LocalShard>(std::make_shared<const ShortcutService>(snap, kSeed));
      dead->kill();
      backends.push_back(std::move(dead));
    }
    EXPECT_THROW(ShardRouter(std::move(backends), options), std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// Scripted fault injection (service/fault.hpp)

TEST(ShardedService, FaultPlanErrorTextsMatchTheRealFailureModes) {
  const auto snap = test_snapshot();
  const auto make_inner = [&] {
    return std::make_unique<LocalShard>(std::make_shared<const ShortcutService>(snap, kSeed));
  };
  const auto batch = mixed_batch(4);

  FaultPlan kill;
  kill.kill_at_batch = 0;
  FaultyShard killed(make_inner(), kill);
  try {
    killed.send_batch(batch);
    FAIL() << "kill fault not injected";
  } catch (const ShardUnavailable& e) {
    EXPECT_STREQ(e.what(), "shard killed");
  }
  EXPECT_THROW(killed.reattach(), ShardUnavailable) << "a killed shard must stay dead";

  FaultPlan drop;
  drop.drop_frame_at = 0;
  FaultyShard dropped(make_inner(), drop);
  dropped.send_batch(batch);
  try {
    (void)dropped.gather();
    FAIL() << "drop fault not injected";
  } catch (const ShardUnavailable& e) {
    EXPECT_STREQ(e.what(), "rpc: connection lost");
  }
  // Transient: the next batch goes through untouched.
  dropped.send_batch(batch);
  EXPECT_EQ(dropped.gather().size(), batch.size());

  FaultPlan garble;
  garble.garble_frame_at = 0;
  FaultyShard garbled(make_inner(), garble);
  garbled.send_batch(batch);
  try {
    (void)garbled.gather();
    FAIL() << "garble fault not injected";
  } catch (const ShardUnavailable& e) {
    EXPECT_STREQ(e.what(), "rpc: frame payload checksum mismatch");
  }

  FaultPlan stall;
  stall.delay_at = 0;
  stall.delay_ms = 100;
  FaultyShard stalled(make_inner(), stall, /*call_deadline_ms=*/50);
  stalled.send_batch(batch);
  try {
    (void)stalled.gather();
    FAIL() << "deadline fault not injected";
  } catch (const ShardUnavailable& e) {
    EXPECT_STREQ(e.what(), "rpc: deadline exceeded after 50 ms");
  }

  // A delay under the deadline (or with no deadline) is absorbed.
  FaultPlan slow;
  slow.delay_at = 0;
  slow.delay_ms = 10;
  FaultyShard tolerated(make_inner(), slow, /*call_deadline_ms=*/50);
  tolerated.send_batch(batch);
  EXPECT_EQ(tolerated.gather().size(), batch.size());
}

TEST(ShardedService, SeededFaultPlanReplaysByteIdentically) {
  const auto snap = test_snapshot();
  // The replay record covers the full result vector — deterministic content
  // (digest) AND failover telemetry — so two identical runs must agree on
  // where every query actually ran, not just on what it answered.
  const auto run_chaos = [&](std::uint64_t plan_seed) {
    service::RouterOptions options;
    options.replicas = 2;
    std::vector<std::unique_ptr<ShardBackend>> backends;
    for (std::size_t s = 0; s < 3; ++s) {
      FaultPlan plan;
      plan.seed = plan_seed + s;
      plan.drop_percent = 40;
      backends.push_back(std::make_unique<FaultyShard>(
          std::make_unique<LocalShard>(std::make_shared<const ShortcutService>(snap, kSeed)),
          plan));
    }
    const ShardRouter router(std::move(backends), options);
    std::vector<std::uint64_t> record;
    for (int b = 0; b < 6; ++b) {
      for (const QueryResult& r : router.run_batch(mixed_batch(16, 1000 + 100 * b))) {
        record.push_back(r.digest());
        record.push_back((std::uint64_t{r.attempts} << 32) | r.served_by_replica);
      }
    }
    return record;
  };
  // Two runs of the same plan produce byte-identical result vectors...
  const std::vector<std::uint64_t> first = run_chaos(11);
  EXPECT_EQ(run_chaos(11), first);
  // ...and the plan seed actually matters (different chaos, different run).
  EXPECT_NE(run_chaos(12), first);
}

TEST(ShardedService, TransientFaultsFailOverWithoutChangingDigests) {
  // Replicated fleet with seeded drop chaos on ONE shard (so a victim's
  // fallback is always a healthy shard): every batch stays fully ok with
  // oracle digests — a transient drop just moves the victims to their
  // fallback replica, and the dropped shard re-attaches on the next
  // batch's probe.
  const auto snap = test_snapshot();
  const ShortcutService plain(snap, kSeed);
  service::RouterOptions options;
  options.replicas = 2;
  std::vector<std::unique_ptr<ShardBackend>> backends;
  for (std::size_t s = 0; s < 3; ++s) {
    FaultPlan plan;
    if (s == 0) {
      plan.seed = 99;
      plan.drop_percent = 50;
    }
    backends.push_back(std::make_unique<FaultyShard>(
        std::make_unique<LocalShard>(std::make_shared<const ShortcutService>(snap, kSeed)),
        plan));
  }
  const ShardRouter router(std::move(backends), options);
  std::size_t failed_over = 0;
  for (int b = 0; b < 6; ++b) {
    const auto batch = mixed_batch(16, 1000 + 100 * b);
    const std::vector<QueryResult> results = router.run_batch(batch);
    const std::vector<std::uint64_t> expected = digests(plain.run_batch(batch));
    for (const QueryResult& r : results) {
      ASSERT_TRUE(r.ok) << r.error;
      if (r.served_by_replica > 0) ++failed_over;
    }
    EXPECT_EQ(digests(results), expected) << "batch " << b << " diverged under chaos";
  }
  EXPECT_GT(failed_over, 0u) << "the chaos plan never actually dropped a frame";
}

}  // namespace
