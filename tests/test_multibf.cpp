// Tests for the scheduled multi-source Bellman–Ford and the deterministic
// tree baseline, plus the simulated landmark-SSSP plumbing.
#include <gtest/gtest.h>

#include <algorithm>

#include "congest/multibf.hpp"
#include "congest/simulator.hpp"
#include "core/kp.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sssp/sssp.hpp"
#include "util/rng.hpp"

namespace lcs {
namespace {

using graph::Graph;
using graph::VertexId;

TEST(MultiBf, SingleSourceMatchesDijkstra) {
  Rng rng(1);
  const Graph g = graph::connected_gnm(60, 140, rng);
  const graph::EdgeWeights w = graph::random_weights(g, 12, rng);
  congest::MultiBellmanFordProgram prog(g, w, {5});
  congest::Simulator sim(g, 1);
  const congest::RunStats st = sim.run(prog, 100000);
  ASSERT_TRUE(st.completed);
  const auto want = sssp::dijkstra(g, w, 5);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(prog.dist_of(0, v), want.dist[v]) << "v=" << v;
}

class MultiBfSweep : public ::testing::TestWithParam<int> {};

TEST_P(MultiBfSweep, ManySourcesAllMatchOracles) {
  Rng rng(100 + GetParam());
  const Graph g = graph::connected_gnm(50, 120, rng);
  const graph::EdgeWeights w = graph::random_weights(g, 9, rng);
  std::vector<VertexId> sources{0, 7, 13, 21, 34};
  congest::MultiBellmanFordProgram prog(g, w, sources);
  congest::Simulator sim(g, 1);
  const congest::RunStats st = sim.run(prog, 100000);
  ASSERT_TRUE(st.completed);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const auto want = sssp::dijkstra(g, w, sources[i]);
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      EXPECT_EQ(prog.dist_of(i, v), want.dist[v]) << "i=" << i << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiBfSweep, ::testing::Values(0, 1, 2));

TEST(MultiBf, ParentsConsistentWithDistances) {
  Rng rng(3);
  const Graph g = graph::connected_gnm(40, 90, rng);
  const graph::EdgeWeights w = graph::random_weights(g, 7, rng);
  congest::MultiBellmanFordProgram prog(g, w, {2, 9});
  congest::Simulator sim(g, 1);
  sim.run(prog, 100000);
  for (std::size_t i = 0; i < 2; ++i) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const VertexId p = prog.parent_of(i, v);
      if (p == graph::kNoVertex) continue;
      EXPECT_LT(prog.dist_of(i, p), prog.dist_of(i, v));
    }
  }
}

TEST(MultiBf, SharedBandwidthStillCorrect) {
  // All sources on one path end: heavy contention, still exact.
  const Graph g = graph::path_graph(20);
  const graph::EdgeWeights w(g.num_edges(), 3);
  std::vector<VertexId> sources{0, 0 + 1, 2, 3, 4, 5};
  congest::MultiBellmanFordProgram prog(g, w, sources);
  congest::Simulator sim(g, 1);
  const congest::RunStats st = sim.run(prog, 100000);
  ASSERT_TRUE(st.completed);
  for (std::size_t i = 0; i < sources.size(); ++i)
    EXPECT_EQ(prog.dist_of(i, 19), 3u * (19 - sources[i]));
  EXPECT_GE(st.max_edge_load, sources.size());
}

TEST(MultiBf, RejectsBadInput) {
  const Graph g = graph::path_graph(4);
  EXPECT_THROW(congest::MultiBellmanFordProgram(g, graph::EdgeWeights{1, 1}, {0}),
               std::invalid_argument);  // wrong weight count
  EXPECT_THROW(
      congest::MultiBellmanFordProgram(g, graph::EdgeWeights{1, 1, 1}, {}),
      std::invalid_argument);  // no sources
  EXPECT_THROW(
      congest::MultiBellmanFordProgram(g, graph::EdgeWeights{1, -1, 1}, {0}),
      std::invalid_argument);  // negative weight
}

// --- deterministic tree baseline -------------------------------------------------

TEST(DetTree, CoversWithBoundedDilation) {
  const graph::HardInstance hi = graph::hard_instance(500, 4);
  const auto sc = core::build_deterministic_tree_shortcuts(hi.g, hi.paths, 4);
  const auto q = core::measure_quality(hi.g, hi.paths, sc);
  EXPECT_TRUE(q.all_covered);
  EXPECT_LE(q.max_cover_radius, 2u * 4u);
}

TEST(DetTree, IsDeterministic) {
  const graph::HardInstance hi = graph::hard_instance(400, 4);
  const auto a = core::build_deterministic_tree_shortcuts(hi.g, hi.paths);
  const auto b = core::build_deterministic_tree_shortcuts(hi.g, hi.paths);
  EXPECT_EQ(a.h, b.h);
}

TEST(DetTree, SmallPartsSkipped) {
  Rng rng(4);
  const Graph g = graph::connected_gnm(200, 420, rng);
  const graph::Partition p = graph::forest_partition(g, 2, rng);
  const auto sc = core::build_deterministic_tree_shortcuts(g, p);
  for (const auto& h : sc.h) EXPECT_TRUE(h.empty());
}

TEST(DetTree, TreesAreSpanningForLargeParts) {
  const graph::HardInstance hi = graph::hard_instance(400, 4);
  const auto sc = core::build_deterministic_tree_shortcuts(hi.g, hi.paths, 4);
  for (std::size_t i = 0; i < hi.paths.num_parts(); ++i) {
    if (sc.h[i].empty()) continue;
    // A depth-D BFS tree from the leader spans the whole graph here.
    EXPECT_EQ(sc.h[i].size(), hi.g.num_vertices() - 1);
  }
}

// --- simulated landmark SSSP -------------------------------------------------------

TEST(SimulatedSssp, SimulationAgreesWithOracleAndReportsRounds) {
  Rng rng(5);
  const Graph g = graph::connected_gnm(120, 300, rng);
  const graph::EdgeWeights w = graph::random_weights(g, 10, rng);
  sssp::ApproxTreeOptions opt;
  opt.num_landmarks = 9;
  opt.simulate = true;
  // The LCS_CHECK inside approx_sssp_tree cross-validates the simulated
  // Voronoi against the centralized one; reaching here means it agreed.
  const auto r = sssp::approx_sssp_tree(g, w, 0, opt);
  EXPECT_GT(r.rounds_simulated, 0u);
  EXPECT_GT(r.messages_simulated, 0u);
}

TEST(SimulatedSssp, OffByDefault) {
  Rng rng(6);
  const Graph g = graph::connected_gnm(60, 140, rng);
  const graph::EdgeWeights w = graph::random_weights(g, 10, rng);
  const auto r = sssp::approx_sssp_tree(g, w, 0, {});
  EXPECT_EQ(r.rounds_simulated, 0u);
}

}  // namespace
}  // namespace lcs
