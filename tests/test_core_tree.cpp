// Tests for the shortcut-tree machinery (Section 3.1): aux graph layering,
// BFS-tree completeness, sampling rules, (i,k) units/walks, Observation 3.1
// (distinct level-k nodes), Observation 3.2 (projection into H) and the
// empirical content of Lemma 3.3.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/kp.hpp"
#include "core/shortcut_tree.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace lcs::core {
namespace {

struct Fixture {
  graph::HardInstance hi;
  std::vector<VertexId> path;  // P: prefix of part 0 with odd length
  std::vector<VertexId> q;     // Q: the hub-adjacent leader of another part
  ShortcutParams params;

  explicit Fixture(std::uint32_t n = 400, std::uint32_t d = 4, std::size_t path_len = 9)
      : hi(graph::hard_instance(n, d)), params(ShortcutParams::make(hi.g.num_vertices(), d)) {
    const auto& part = hi.paths.parts[0];
    for (std::size_t j = 0; j < std::min(path_len, part.size()); ++j)
      path.push_back(part[j]);
    q = {hi.paths.parts[1][0]};
  }
};

TEST(ShortcutTree, LayerAssignment) {
  const Fixture f;
  const std::uint32_t ell = f.hi.diameter;
  const ShortcutTree st(f.hi.g, f.path, f.q, ell, 1, 0.5, 0);
  EXPECT_EQ(st.ell(), ell);
  // Path nodes in layer 1, root in layer l+2.
  for (std::uint32_t pos = 0; pos < f.path.size(); ++pos) {
    EXPECT_EQ(st.layer_of(st.path_node(pos)), 1u);
    EXPECT_EQ(st.g_vertex_of(st.path_node(pos)), f.path[pos]);
  }
  EXPECT_EQ(st.layer_of(st.root()), ell + 2);
  EXPECT_EQ(st.g_vertex_of(st.root()), graph::kNoVertex);
  // Total nodes: |P| + (l-1) n + |Q| + 1.
  EXPECT_EQ(st.num_aux_nodes(),
            f.path.size() + (ell - 1) * f.hi.g.num_vertices() + f.q.size() + 1);
}

TEST(ShortcutTree, CompleteWhenEllAtLeastDistance) {
  const Fixture f;
  // dist(P, Q) <= diameter, so l = D must complete.
  const ShortcutTree st(f.hi.g, f.path, f.q, f.hi.diameter, 1, 1.0, 0);
  EXPECT_TRUE(st.tree_complete());
}

TEST(ShortcutTree, IncompleteWhenEllTooSmall) {
  const Fixture f;
  // Q is a single vertex on another path; distance from P exceeds 1.
  const ShortcutTree st(f.hi.g, f.path, f.q, 1, 1, 1.0, 0);
  EXPECT_FALSE(st.tree_complete());
}

TEST(ShortcutTree, TreeParentsRespectLayers) {
  const Fixture f;
  const ShortcutTree st(f.hi.g, f.path, f.q, f.hi.diameter, 1, 0.4, 0);
  for (VertexId x = 0; x < st.num_aux_nodes(); ++x) {
    const VertexId par = st.tree_parent(x);
    if (par == graph::kNoVertex) continue;
    EXPECT_EQ(st.layer_of(par), st.layer_of(x) + 1) << "aux " << x;
  }
}

TEST(ShortcutTree, Layer1EdgesAlwaysSurvive) {
  const Fixture f;
  const ShortcutTree st(f.hi.g, f.path, f.q, f.hi.diameter, 99, 0.01, 0);
  for (std::uint32_t pos = 0; pos < f.path.size(); ++pos) {
    const VertexId pn = st.path_node(pos);
    if (st.tree_parent(pn) != graph::kNoVertex) {
      EXPECT_TRUE(st.tree_edge_survives(pn));
    }
  }
}

TEST(ShortcutTree, SelfCopyEdgesAlwaysSurvive) {
  const Fixture f;
  const ShortcutTree st(f.hi.g, f.path, f.q, f.hi.diameter, 99, 0.0, 0);
  for (VertexId x = 0; x < st.num_aux_nodes(); ++x) {
    const VertexId par = st.tree_parent(x);
    if (par == graph::kNoVertex || st.layer_of(x) == 1) continue;
    if (st.layer_of(par) == st.ell() + 2) continue;
    if (st.g_vertex_of(x) == st.g_vertex_of(par)) {
      EXPECT_TRUE(st.tree_edge_survives(x));
    }
  }
}

TEST(ShortcutTree, ZeroProbabilityKillsNonSelfMiddleEdges) {
  const Fixture f;
  const ShortcutTree st(f.hi.g, f.path, f.q, f.hi.diameter, 99, 0.0, 0);
  for (VertexId x = 0; x < st.num_aux_nodes(); ++x) {
    const VertexId par = st.tree_parent(x);
    if (par == graph::kNoVertex || st.layer_of(x) < 2) continue;
    if (st.layer_of(par) == st.ell() + 2) continue;
    if (st.g_vertex_of(x) != st.g_vertex_of(par)) {
      EXPECT_FALSE(st.tree_edge_survives(x));
    }
  }
}

TEST(ShortcutTree, FullProbabilityKeepsEverything) {
  const Fixture f;
  const ShortcutTree st(f.hi.g, f.path, f.q, f.hi.diameter, 99, 1.0, 0);
  for (VertexId x = 0; x < st.num_aux_nodes(); ++x)
    if (st.tree_parent(x) != graph::kNoVertex) {
      EXPECT_TRUE(st.tree_edge_survives(x));
    }
}

// --- (i,k) units (Definition 3.1) -----------------------------------------------

TEST(Units, ApexWithinRequestedLevels) {
  const Fixture f;
  const ShortcutTree st(f.hi.g, f.path, f.q, f.hi.diameter, 5, 0.5, 0);
  ASSERT_TRUE(st.tree_complete());
  for (std::uint32_t k = 2; k <= f.hi.diameter; ++k) {
    for (std::uint32_t pos = 0; pos < f.path.size(); ++pos) {
      const auto u = st.unit(pos, k);
      ASSERT_TRUE(u.valid);
      EXPECT_GE(u.apex_layer, 2u);
      EXPECT_LE(u.apex_layer, k);
      EXPECT_GE(u.end_pos, pos);  // right-most P-node is never left of p_i
      EXPECT_EQ(u.walk.front(), st.path_node(pos));
    }
  }
}

TEST(Units, WalkStepsAreTstarAdjacent) {
  const Fixture f;
  const ShortcutTree st(f.hi.g, f.path, f.q, f.hi.diameter, 5, 0.6, 0);
  const auto u = st.unit(0, f.hi.diameter);
  ASSERT_TRUE(u.valid);
  // Each consecutive pair in the unit walk differs by one tree edge.
  for (std::size_t i = 0; i + 1 < u.walk.size(); ++i) {
    const VertexId a = u.walk[i];
    const VertexId b = u.walk[i + 1];
    EXPECT_TRUE(st.tree_parent(a) == b || st.tree_parent(b) == a);
  }
}

TEST(Units, FullSamplingReachesEndOfPath) {
  const Fixture f;
  // With p = 1 the whole BFS tree survives; subtree of the apex at level
  // l+1 is the entire leaf set, so the unit ends at t.
  const ShortcutTree st(f.hi.g, f.path, f.q, f.hi.diameter, 5, 1.0, 0);
  const auto u = st.unit(0, f.hi.diameter + 1);
  ASSERT_TRUE(u.valid);
  EXPECT_EQ(u.end_pos, f.path.size() - 1);
}

// --- maximal (i,k) walks + Observation 3.1 -----------------------------------------

class WalkTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WalkTest, LevelKNodesAreDistinct) {
  const Fixture f(500, 4, 13);
  const ShortcutTree st(f.hi.g, f.path, f.q, f.hi.diameter, GetParam(),
                        f.params.sample_prob, 0);
  if (!st.tree_complete()) GTEST_SKIP();
  for (std::uint32_t k = 2; k <= f.hi.diameter; ++k) {
    const auto w = st.maximal_walk(0, k);
    std::set<VertexId> distinct(w.level_k_nodes.begin(), w.level_k_nodes.end());
    EXPECT_EQ(distinct.size(), w.level_k_nodes.size())
        << "Observation 3.1 violated at k=" << k;
  }
}

TEST_P(WalkTest, WalkIsMonotoneOverPath) {
  const Fixture f(500, 4, 13);
  const ShortcutTree st(f.hi.g, f.path, f.q, f.hi.diameter, GetParam(), 0.5, 0);
  ASSERT_TRUE(st.tree_complete());
  for (std::uint32_t k = 2; k <= f.hi.diameter; ++k) {
    const auto w = st.maximal_walk(0, k);
    // Layer-1 nodes appear in non-decreasing position order.
    std::uint32_t last_pos = 0;
    for (const VertexId x : w.nodes) {
      if (st.layer_of(x) != 1) continue;
      EXPECT_GE(x, last_pos);
      last_pos = x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalkTest, ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- Observation 3.2: projection into H --------------------------------------------

TEST(Projection, WalkProjectsToPathInAugmentedSubgraph) {
  // The T* edges replay the exact coins of part 0's H; the projected walk
  // must therefore be a walk inside G[S_0] ∪ H_0.
  const Fixture f(500, 4, 11);
  KpOptions opt;
  opt.diameter = 4;
  opt.seed = 77;
  const auto res = build_kp_shortcuts(f.hi.g, f.hi.paths, opt);
  ASSERT_TRUE(res.is_large[0]);
  const std::uint32_t li = res.large_index[0];

  const ShortcutTree st(f.hi.g, f.path, f.q, f.hi.diameter, opt.seed,
                        res.params.sample_prob, li);
  ASSERT_TRUE(st.tree_complete());

  // Adjacency set of the augmented subgraph H = G[S_0] ∪ H_0.
  const auto aug = augmented_edges(f.hi.g, f.hi.paths.parts[0], res.shortcuts.h[0]);
  std::set<std::pair<VertexId, VertexId>> allowed;
  for (const EdgeId e : aug) {
    const graph::Edge ed = f.hi.g.edge(e);
    allowed.emplace(ed.u, ed.v);
    allowed.emplace(ed.v, ed.u);
  }

  for (std::uint32_t k = 2; k <= f.hi.diameter; ++k) {
    const auto w = st.maximal_walk(0, k);
    const auto projected = st.project_to_g(w.nodes);
    for (std::size_t i = 0; i + 1 < projected.size(); ++i) {
      EXPECT_TRUE(allowed.count({projected[i], projected[i + 1]}))
          << "projected step " << projected[i] << "->" << projected[i + 1]
          << " not in H (k=" << k << ")";
    }
  }
}

// --- Lemma 3.3 (empirical content) ---------------------------------------------------

TEST(Lemma33, DistanceToLevelsBoundedAtFullSampling) {
  const Fixture f(400, 4, 9);
  const ShortcutTree st(f.hi.g, f.path, f.q, f.hi.diameter, 3, 1.0, 0);
  ASSERT_TRUE(st.tree_complete());
  // With p = 1: T* ⊇ T, so p_1 reaches level k in exactly k-1 hops.
  for (std::uint32_t k = 2; k <= f.hi.diameter + 1; ++k)
    EXPECT_LE(st.dist_to_level(0, k), k - 1 + st.path_length());
}

TEST(Lemma33, DistanceMonotoneInSampling) {
  const Fixture f(400, 4, 9);
  // More sampling can only shorten T* distances (supergraph of edges).
  const ShortcutTree sparse(f.hi.g, f.path, f.q, f.hi.diameter, 3, 0.05, 0);
  const ShortcutTree dense(f.hi.g, f.path, f.q, f.hi.diameter, 3, 1.0, 0);
  ASSERT_TRUE(sparse.tree_complete());
  for (std::uint32_t k = 2; k <= f.hi.diameter; ++k) {
    const auto ds = sparse.dist_to_level(0, k);
    const auto dd = dense.dist_to_level(0, k);
    if (ds != graph::kUnreached) {
      EXPECT_LE(dd, ds);
    }
  }
}

TEST(Lemma33, Level2AlwaysOneHop) {
  // E(L1, L2) survives with probability 1, so dist(p_i, {t} ∪ L_2) = 1 for
  // every interior position (and 0 at t itself, which is in the target set).
  const Fixture f(400, 4, 9);
  const ShortcutTree st(f.hi.g, f.path, f.q, f.hi.diameter, 13, 0.0, 0);
  ASSERT_TRUE(st.tree_complete());
  const std::uint32_t last = st.path_length() - 1;
  for (std::uint32_t pos = 0; pos < last; ++pos)
    EXPECT_EQ(st.dist_to_level(pos, 2), 1u);
  EXPECT_EQ(st.dist_to_level(last, 2), 0u);
}

TEST(Projection, PathEdgesProjectWithinPart) {
  const Fixture f(400, 4, 9);
  const ShortcutTree st(f.hi.g, f.path, f.q, f.hi.diameter, 3, 0.5, 0);
  const auto dist = st.tstar_dist_from(0);
  // The layer-1 path is always present in T*: consecutive path nodes at
  // distance at most 1 apart from each other.
  for (std::uint32_t pos = 0; pos + 1 < f.path.size(); ++pos) {
    EXPECT_LE(dist[st.path_node(pos + 1)], dist[st.path_node(pos)] + 1);
  }
}

TEST(ShortcutTree, RejectsNonPath) {
  const Fixture f;
  std::vector<VertexId> not_path{f.path[0], f.path[2]};  // skips a vertex
  EXPECT_THROW(ShortcutTree(f.hi.g, not_path, f.q, 4, 1, 0.5, 0),
               std::invalid_argument);
}

TEST(ShortcutTree, RejectsEmptyInputs) {
  const Fixture f;
  EXPECT_THROW(ShortcutTree(f.hi.g, {}, f.q, 4, 1, 0.5, 0), std::invalid_argument);
  EXPECT_THROW(ShortcutTree(f.hi.g, f.path, {}, 4, 1, 0.5, 0), std::invalid_argument);
  EXPECT_THROW(ShortcutTree(f.hi.g, f.path, f.q, 0, 1, 0.5, 0), std::invalid_argument);
}

}  // namespace
}  // namespace lcs::core
