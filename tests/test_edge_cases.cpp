// Edge-case and failure-injection tests across modules: degenerate inputs,
// capacity variations, boundary parameters, and contract violations.
#include <gtest/gtest.h>

#include <cmath>

#include "congest/multibfs.hpp"
#include "congest/multitree.hpp"
#include "congest/programs.hpp"
#include "congest/simulator.hpp"
#include "core/distributed.hpp"
#include "core/kp.hpp"
#include "core/shortcut.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace lcs {
namespace {

using graph::Graph;
using graph::VertexId;

// --- simulator with higher bandwidth -----------------------------------------

TEST(Capacity, MultiBfsFasterWithWiderEdges) {
  // K instances share one path; capacity B should cut rounds ~B-fold.
  const Graph g = graph::path_graph(5);
  auto run_with_capacity = [&](std::uint32_t cap) {
    std::vector<graph::EdgeId> all(g.num_edges());
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) all[e] = e;
    std::vector<congest::BfsInstanceSpec> specs(12);
    for (auto& s : specs) {
      s.root = 0;
      s.edges = all;
    }
    congest::MultiBfsProgram prog(g, std::move(specs));
    congest::Simulator sim(g, cap);
    const congest::RunStats st = sim.run(prog, 1000);
    EXPECT_TRUE(st.completed);
    for (std::size_t i = 0; i < 12; ++i) EXPECT_EQ(prog.dist_of(i, 4), 4u);
    return st.rounds;
  };
  const std::uint32_t narrow = run_with_capacity(1);
  const std::uint32_t wide = run_with_capacity(4);
  EXPECT_LT(wide, narrow);
  EXPECT_GE(narrow, 12u);  // bandwidth-bound at capacity 1
}

TEST(Capacity, ConvergecastUnaffectedByWidth) {
  // A single convergecast sends one message per edge; extra capacity is idle.
  const Graph g = graph::path_graph(20);
  const graph::BfsResult r = graph::bfs(g, 0);
  const congest::RootedTree t = congest::RootedTree::from_bfs(g, r, 0);
  for (const std::uint32_t cap : {1u, 3u}) {
    congest::ConvergecastProgram prog(t, std::vector<std::uint64_t>(20, 1),
                                      [](std::uint64_t a, std::uint64_t b) { return a + b; });
    congest::Simulator sim(g, cap);
    sim.run(prog, 100);
    EXPECT_EQ(prog.result(), 20u);
  }
}

// --- degenerate graphs ----------------------------------------------------------

TEST(Degenerate, SingleEdgeGraphEverything) {
  const Graph g = graph::path_graph(2);
  EXPECT_EQ(graph::diameter_exact(g), 1u);
  EXPECT_EQ(graph::bridges(g).size(), 1u);
  graph::Partition p;
  p.parts = {{0, 1}};
  const core::ShortcutSet sc = core::build_trivial_shortcuts(p);
  const core::QualityReport q = core::measure_quality(g, p, sc);
  EXPECT_TRUE(q.all_covered);
  EXPECT_EQ(q.dilation_ub, 1u);
  EXPECT_EQ(q.congestion, 1u);
}

TEST(Degenerate, EmptyPartitionHasTrivialQuality) {
  const Graph g = graph::path_graph(5);
  graph::Partition p;  // no parts
  core::ShortcutSet sc;
  const core::QualityReport q = core::measure_quality(g, p, sc);
  EXPECT_TRUE(q.all_covered);
  EXPECT_EQ(q.congestion, 0u);
  EXPECT_EQ(q.dilation_ub, 0u);
}

TEST(Degenerate, KpOnSingletonPartition) {
  Rng rng(1);
  const Graph g = graph::connected_gnm(50, 120, rng);
  const graph::Partition p = graph::singleton_partition(g);
  const auto res = core::build_kp_shortcuts(g, p, {});
  EXPECT_EQ(res.num_large, 0u);  // singletons are never large
  const auto q = core::measure_quality(g, p, res.shortcuts);
  EXPECT_TRUE(q.all_covered);
}

TEST(Degenerate, DistributedOnTinyGraph) {
  const Graph g = graph::path_graph(4);
  graph::Partition p;
  p.parts = {{0, 1}, {2, 3}};
  core::DistributedOptions opt;
  opt.diameter = 3;
  const auto out = core::build_distributed(g, p, opt);
  EXPECT_TRUE(out.success);
}

TEST(Degenerate, SubgraphFromNoEdges) {
  const Graph g = graph::path_graph(4);
  const graph::EdgeInducedSubgraph sub(g, {});
  EXPECT_EQ(sub.num_vertices(), 0u);
  EXPECT_EQ(sub.num_edges(), 0u);
  EXPECT_FALSE(sub.to_local(0).has_value());
  EXPECT_TRUE(sub.contains_all({}));
}

// --- parameter boundaries ---------------------------------------------------------

TEST(Params, DiameterThreeIsSmallestKdRegime) {
  const auto p = ShortcutParams::make(10000, 3);
  EXPECT_NEAR(p.k_d, std::pow(10000.0, 0.25), 1e-9);
  EXPECT_EQ(p.repetitions, 3u);
}

TEST(Params, HugeDiameterApproachesSqrt) {
  const auto p = ShortcutParams::make(1 << 16, 1000);
  EXPECT_GT(p.k_d, 0.95 * 256.0);
  EXPECT_LE(p.k_d, 256.0);
}

TEST(Params, TwoVertexGraph) {
  const auto p = ShortcutParams::make(2, 1);
  EXPECT_EQ(p.large_threshold, 1u);
  EXPECT_LE(p.sample_prob, 1.0);
}

TEST(Params, BetaExtremes) {
  const auto tiny = ShortcutParams::make(4096, 4, 1e-9);
  EXPECT_GT(tiny.sample_prob, 0.0);
  EXPECT_LT(tiny.sample_prob, 1e-6);
  const auto huge = ShortcutParams::make(4096, 4, 1e9);
  EXPECT_EQ(huge.sample_prob, 1.0);
}

// --- hard instances at boundary diameters ------------------------------------------

TEST(HardBoundary, LargeDiameters) {
  for (const std::uint32_t d : {9u, 10u, 12u}) {
    const graph::HardInstance hi = graph::hard_instance(1500, d);
    EXPECT_EQ(graph::diameter_exact(hi.g), d) << "D=" << d;
    EXPECT_EQ(validate_partition(hi.g, hi.paths), "") << "D=" << d;
  }
}

TEST(HardBoundary, MinimumViableSize) {
  // Smallest n the generator accepts for D=3: 3 * path_len.
  const graph::HardInstance hi = graph::hard_instance(64, 3);
  EXPECT_EQ(graph::diameter_exact(hi.g), 3u);
  EXPECT_GE(hi.num_paths, 2u);
}

// --- failure injection: truncated multi-BFS misses far vertices ----------------------

TEST(FailureInjection, DepthCapFailsSpanning) {
  // Make the detection depth too small on purpose: the truncated BFS must
  // report missing coverage (this is exactly the "large part" signal).
  const Graph g = graph::path_graph(30);
  std::vector<congest::BfsInstanceSpec> specs(1);
  specs[0].root = 0;
  specs[0].edges.resize(g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) specs[0].edges[e] = e;
  specs[0].depth_cap = 5;
  congest::MultiBfsProgram prog(g, std::move(specs));
  congest::Simulator sim(g, 1);
  const congest::RunStats st = sim.run(prog, 1000);
  ASSERT_TRUE(st.completed);
  std::uint32_t covered = 0;
  for (VertexId v = 0; v < 30; ++v)
    if (prog.dist_of(0, v) != graph::kUnreached) ++covered;
  EXPECT_EQ(covered, 6u);  // root + 5 hops
}

TEST(FailureInjection, RoundCapAbortsCleanly) {
  // A run that cannot finish within max_rounds reports completed=false and
  // leaves partial state consistent.
  const Graph g = graph::path_graph(50);
  congest::BfsProgram prog(g.num_vertices(), 0);
  congest::Simulator sim(g, 1);
  const congest::RunStats st = sim.run(prog, 10);
  EXPECT_FALSE(st.completed);
  EXPECT_EQ(prog.dist()[8], 8u);
  EXPECT_EQ(prog.dist()[30], graph::kUnreached);
}

TEST(FailureInjection, ZeroProbabilityShortcutsStillCoverViaStep1) {
  // Even with p = 0, Step 1 keeps each part's incident edges, so coverage
  // holds (dilation = the bare part diameter).
  const graph::HardInstance hi = graph::hard_instance(400, 4);
  core::KpOptions opt;
  opt.diameter = 4;
  opt.probability_override = 0.0;
  const auto rep = core::measure_kp_quality(hi.g, hi.paths, opt);
  EXPECT_TRUE(rep.quality.all_covered);
  EXPECT_GE(rep.quality.dilation_ub, hi.path_length - 1);
}

// --- multitree quirks -----------------------------------------------------------------

TEST(MultiTreeEdge, BroadcastOnSingleton) {
  const Graph g = graph::path_graph(3);
  congest::TreeInstanceSpec s;
  s.root = 1;
  s.members = {1};
  s.parent = {graph::kNoVertex};
  s.parent_edge = {graph::kNoEdge};
  s.value = {0};
  congest::MultiBroadcastProgram prog(g, {s}, {5});
  EXPECT_TRUE(prog.complete(0));
  EXPECT_EQ(prog.value_at(0, 1), 5u);
  EXPECT_EQ(prog.value_at(0, 0), congest::MultiBroadcastProgram::kMissing);
}

TEST(MultiTreeEdge, MixedInstanceSizes) {
  const Graph g = graph::path_graph(8);
  const graph::BfsResult r = graph::bfs(g, 0);
  congest::TreeInstanceSpec big;
  big.root = 0;
  for (VertexId v = 0; v < 8; ++v) {
    big.members.push_back(v);
    big.parent.push_back(r.parent[v]);
    big.parent_edge.push_back(r.parent_edge[v]);
  }
  big.value.assign(8, 1);
  congest::TreeInstanceSpec tiny;
  tiny.root = 7;
  tiny.members = {7};
  tiny.parent = {graph::kNoVertex};
  tiny.parent_edge = {graph::kNoEdge};
  tiny.value = {100};
  congest::MultiConvergecastProgram prog(
      g, {big, tiny}, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  congest::Simulator sim(g, 1);
  const congest::RunStats st = sim.run(prog, 100);
  ASSERT_TRUE(st.completed);
  EXPECT_EQ(prog.result(0), 8u);
  EXPECT_EQ(prog.result(1), 100u);
}

// --- RNG reproducibility across module boundaries -------------------------------------

TEST(Reproducibility, FullPipelineStableAcrossRuns) {
  auto run_once = [] {
    const graph::HardInstance hi = graph::hard_instance(300, 4);
    core::KpOptions opt;
    opt.diameter = 4;
    opt.seed = 4242;
    const auto rep = core::measure_kp_quality(hi.g, hi.paths, opt);
    return std::make_tuple(rep.quality.congestion, rep.quality.dilation_ub,
                           rep.total_shortcut_edges);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace lcs
