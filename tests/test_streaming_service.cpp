// Streaming admission coverage (PR 9).
//
// The contract under test — determinism contract point 9: shedding is
// schedule-pure.  A StreamingService admits or sheds every submission
// synchronously, and the verdict sequence is a pure fold of the recorded
// arrival/wave schedule: replay_shed_schedule() over schedule() must equal
// verdicts() exactly, at any thread count, under any submit interleaving.
// Served results must be bit-identical to the sequential single-query
// oracle (ShortcutService::run), because admission changes only latency and
// the queue/wave telemetry, never content.  The token-bucket unit tests pin
// the refill arithmetic the fold runs on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "service/service.hpp"
#include "service/streaming.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace lcs;
using service::AdmissionLedger;
using service::ArrivalVerdict;
using service::CostClass;
using service::GraphSnapshot;
using service::QueryKind;
using service::QueryRequest;
using service::QueryResult;
using service::ScheduleEvent;
using service::ShedReason;
using service::ShortcutService;
using service::StreamingOptions;
using service::StreamingService;
using service::TenantConfig;
using service::TokenBucketConfig;

std::shared_ptr<const GraphSnapshot> small_snapshot(std::uint64_t seed = 17,
                                                    std::uint32_t n = 120) {
  Rng gen(seed);
  return GraphSnapshot::build(graph::connected_gnm(n, 3 * n, gen));
}

/// Two real tenants with asymmetric budgets — tight enough that fuzz
/// schedules exercise every shed reason.
StreamingOptions two_tier_options(bool drain_thread = false) {
  StreamingOptions opt;
  opt.drain_thread = drain_thread;
  opt.cheap_slots = 3;
  opt.heavy_slots = 2;
  opt.tenants = {
      TenantConfig{"gold", TokenBucketConfig{8, 2000}, TokenBucketConfig{4, 1000}},
      TenantConfig{"bronze", TokenBucketConfig{3, 500}, TokenBucketConfig{1, 250}},
  };
  return opt;
}

// --- token-bucket unit tests -------------------------------------------------

TEST(AdmissionLedger, BurstEqualsBucketCapacity) {
  StreamingOptions opt;
  opt.tenants = {TenantConfig{"t", TokenBucketConfig{3, 0}, TokenBucketConfig{1, 0}}};
  AdmissionLedger ledger(opt);
  for (int i = 0; i < 3; ++i)
    EXPECT_TRUE(ledger.on_arrival(0, CostClass::kCheap).admitted()) << i;
  const ArrivalVerdict v = ledger.on_arrival(0, CostClass::kCheap);
  EXPECT_EQ(v.reason, ShedReason::kRateLimited);
  EXPECT_EQ(v.millitokens_after, 0u);
  // The heavy budget is independent of the cheap one.
  EXPECT_TRUE(ledger.on_arrival(0, CostClass::kHeavy).admitted());
  EXPECT_EQ(ledger.on_arrival(0, CostClass::kHeavy).reason, ShedReason::kRateLimited);
}

TEST(AdmissionLedger, RefillArithmeticAtBudgetBoundaries) {
  StreamingOptions opt;
  opt.tenants = {TenantConfig{"t", TokenBucketConfig{1, 500}, TokenBucketConfig{1, 1000}}};
  AdmissionLedger ledger(opt);
  // burst 1: the first arrival drains the bucket to exactly zero.
  EXPECT_EQ(ledger.on_arrival(0, CostClass::kCheap).millitokens_after, 0u);
  // refill 500: one wave leaves half a query — still shed, and a shed never
  // spends tokens; the second wave reaches exactly one query's worth.
  (void)ledger.next_wave();
  EXPECT_EQ(ledger.millitokens(0, CostClass::kCheap), 500u);
  const ArrivalVerdict shed = ledger.on_arrival(0, CostClass::kCheap);
  EXPECT_EQ(shed.reason, ShedReason::kRateLimited);
  EXPECT_EQ(shed.millitokens_after, 500u);
  (void)ledger.next_wave();
  EXPECT_EQ(ledger.millitokens(0, CostClass::kCheap), 1000u);
  const ArrivalVerdict ok = ledger.on_arrival(0, CostClass::kCheap);
  EXPECT_TRUE(ok.admitted());
  EXPECT_EQ(ok.millitokens_after, 0u);
  // Refills cap at burst capacity, never accumulate beyond it.
  for (int i = 0; i < 10; ++i) (void)ledger.next_wave();
  EXPECT_EQ(ledger.millitokens(0, CostClass::kCheap), 1000u);
}

TEST(AdmissionLedger, ZeroRateTenantShedsEverythingDeterministically) {
  StreamingOptions opt;
  opt.tenants = {TenantConfig{"off", TokenBucketConfig{0, 0}, TokenBucketConfig{0, 0}},
                 TenantConfig{"on", TokenBucketConfig{4, 1000}, TokenBucketConfig{2, 500}}};
  AdmissionLedger ledger(opt);
  for (int i = 0; i < 6; ++i) {
    const CostClass cls = (i % 2 == 0) ? CostClass::kCheap : CostClass::kHeavy;
    const ArrivalVerdict v = ledger.on_arrival(0, cls);
    EXPECT_EQ(v.reason, ShedReason::kRateLimited) << i;
    EXPECT_EQ(v.millitokens_after, 0u) << i;
    if (i % 3 == 2) (void)ledger.next_wave();  // zero-capacity buckets stay zero
  }
  EXPECT_TRUE(ledger.on_arrival(1, CostClass::kCheap).admitted());  // unaffected
  EXPECT_EQ(ledger.counters(0).admitted, 0u);
  EXPECT_EQ(ledger.counters(0).shed_rate_limited, 6u);
}

TEST(AdmissionLedger, IdenticalTenantsGetIdenticalVerdictSequences) {
  StreamingOptions opt;
  const TokenBucketConfig cheap{2, 500};
  const TokenBucketConfig heavy{1, 250};
  opt.tenants = {TenantConfig{"a", cheap, heavy}, TenantConfig{"b", cheap, heavy}};
  AdmissionLedger ledger(opt);
  // Same class for both tenants in the same order: with an ample queue only
  // the buckets decide, so the per-tenant (reason, bucket) streams must
  // match exactly — QoS depends on config, never on registration order.
  std::vector<std::pair<ShedReason, std::uint64_t>> a, b;
  Rng rng(99);
  for (int step = 0; step < 40; ++step) {
    const CostClass cls = (rng() % 3 == 0) ? CostClass::kHeavy : CostClass::kCheap;
    const ArrivalVerdict va = ledger.on_arrival(0, cls);
    const ArrivalVerdict vb = ledger.on_arrival(1, cls);
    a.emplace_back(va.reason, va.millitokens_after);
    b.emplace_back(vb.reason, vb.millitokens_after);
    if (step % 2 == 1) (void)ledger.next_wave();
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(ledger.counters(0), ledger.counters(1));
}

TEST(AdmissionLedger, QueueFullShedsBeforeSpendingTokens) {
  StreamingOptions opt;
  opt.max_queue = 2;
  opt.tenants = {TenantConfig{"t", TokenBucketConfig{10, 1000}, TokenBucketConfig{10, 1000}}};
  AdmissionLedger ledger(opt);
  EXPECT_TRUE(ledger.on_arrival(0, CostClass::kCheap).admitted());
  EXPECT_TRUE(ledger.on_arrival(0, CostClass::kHeavy).admitted());
  const ArrivalVerdict full = ledger.on_arrival(0, CostClass::kCheap);
  EXPECT_EQ(full.reason, ShedReason::kQueueFull);
  EXPECT_EQ(full.millitokens_after, 9000u);  // bucket untouched by the shed
  EXPECT_EQ(ledger.counters(0).shed_queue_full, 1u);
  EXPECT_EQ(ledger.tenant_index("nobody"), service::kInvalidTenant);
  EXPECT_EQ(ledger.on_arrival(service::kInvalidTenant, CostClass::kCheap).reason,
            ShedReason::kUnknownTenant);
}

TEST(AdmissionLedger, WavesGrantStrictPerClassFifoSlots) {
  StreamingOptions opt;
  opt.cheap_slots = 2;
  opt.heavy_slots = 1;
  opt.tenants = {TenantConfig{"t", TokenBucketConfig{16, 4000}, TokenBucketConfig{16, 4000}}};
  AdmissionLedger ledger(opt);
  // Arrival order H H C C C (indices 0..4): cheap still gets both its slots
  // in the first wave — heavy backlog can never starve the cheap class.
  (void)ledger.on_arrival(0, CostClass::kHeavy);
  (void)ledger.on_arrival(0, CostClass::kHeavy);
  (void)ledger.on_arrival(0, CostClass::kCheap);
  (void)ledger.on_arrival(0, CostClass::kCheap);
  (void)ledger.on_arrival(0, CostClass::kCheap);
  const AdmissionLedger::WaveGrant g1 = ledger.next_wave();
  EXPECT_EQ(g1.members, (std::vector<std::uint64_t>{2, 3, 0}));
  EXPECT_EQ(g1.record.cheap_granted, 2u);
  EXPECT_EQ(g1.record.heavy_granted, 1u);
  const AdmissionLedger::WaveGrant g2 = ledger.next_wave();
  EXPECT_EQ(g2.members, (std::vector<std::uint64_t>{4, 1}));
  EXPECT_EQ(ledger.queue_depth(), 0u);
}

TEST(AdmissionLedger, RejectsInvalidOptions) {
  StreamingOptions no_tenants;
  EXPECT_THROW(AdmissionLedger{no_tenants}, std::invalid_argument);
  StreamingOptions dup = two_tier_options();
  dup.tenants[1].name = dup.tenants[0].name;
  EXPECT_THROW(AdmissionLedger{dup}, std::invalid_argument);
  StreamingOptions anon = two_tier_options();
  anon.tenants[0].name.clear();
  EXPECT_THROW(AdmissionLedger{anon}, std::invalid_argument);
  StreamingOptions no_slots = two_tier_options();
  no_slots.cheap_slots = 0;
  EXPECT_THROW(AdmissionLedger{no_slots}, std::invalid_argument);
}

// --- fuzz fleet: open-loop schedules vs the sequential oracle ----------------

/// One generated open-loop event: either a wave tick or a (tenant, query)
/// arrival.  "ghost" is deliberately unregistered.
struct FuzzEvent {
  bool wave = false;
  std::string tenant;
  QueryRequest req;
};

std::vector<FuzzEvent> fuzz_schedule(std::uint64_t seed, std::uint64_t id_base,
                                     std::size_t events) {
  std::vector<FuzzEvent> out;
  Rng rng(seed);
  const char* tenants[3] = {"gold", "bronze", "ghost"};
  std::uint64_t next_id = id_base;
  for (std::size_t i = 0; i < events; ++i) {
    FuzzEvent e;
    if (rng() % 5 == 0) {
      e.wave = true;
    } else {
      e.tenant = tenants[rng() % 3];
      QueryRequest q;
      q.id = next_id++;
      q.kind = static_cast<QueryKind>(rng() % 5);
      q.beta = (rng() % 2 == 0) ? 0.5 : 1.0;
      q.karger_trials = (rng() % 8 == 3) ? 6 : 0;
      q.s = static_cast<std::uint32_t>(rng() % 120);  // fixture is n = 120
      q.t = static_cast<std::uint32_t>(rng() % 120);
      e.req = q;
    }
    out.push_back(e);
  }
  return out;
}

/// Everything one schedule run produced, in comparable form.
struct StreamOutcome {
  std::vector<ArrivalVerdict> verdicts;
  std::vector<ScheduleEvent> schedule;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> served;  // (id, digest), sorted
};

StreamOutcome run_schedule(const std::shared_ptr<const GraphSnapshot>& snap,
                           const StreamingOptions& opt,
                           const std::vector<FuzzEvent>& events) {
  StreamingService svc(ShortcutService(snap, 7), opt);
  std::vector<std::pair<QueryRequest, StreamingService::Ticket>> admitted;
  for (const FuzzEvent& e : events) {
    if (e.wave) {
      svc.drain_wave();
    } else {
      StreamingService::Ticket t = svc.submit(e.tenant, e.req);
      if (t.admitted()) {
        admitted.emplace_back(e.req, std::move(t));
      } else {
        EXPECT_FALSE(t.shed_text().empty());
      }
    }
  }
  svc.drain_until_idle();
  StreamOutcome out;
  for (const auto& [req, ticket] : admitted) {
    const QueryResult r = svc.wait(ticket);
    EXPECT_EQ(r.id, req.id);
    out.served.emplace_back(req.id, r.digest());
  }
  std::sort(out.served.begin(), out.served.end());
  out.verdicts = svc.verdicts();
  out.schedule = svc.schedule();
  return out;
}

TEST(StreamingService, FuzzFleetMatchesOracleAndRepliesIdenticallyAcrossThreads) {
  const auto snap = small_snapshot();
  const StreamingOptions opt = two_tier_options();
  const ShortcutService oracle(snap, 7);

  ThreadOverrideGuard guard;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const std::vector<FuzzEvent> events = fuzz_schedule(1000 + seed, seed * 100000, 140);
    std::unordered_map<std::uint64_t, QueryRequest> by_id;
    for (const FuzzEvent& e : events)
      if (!e.wave) by_id.emplace(e.req.id, e.req);

    StreamOutcome ref;
    bool have_ref = false;
    for (const unsigned threads : {1u, 2u, 8u}) {
      set_num_threads(threads);
      const StreamOutcome got = run_schedule(snap, opt, events);
      // Contract point 9: the recorded schedule re-folds to the identical
      // verdict sequence — the shed set is byte-identical on replay.
      EXPECT_EQ(got.verdicts, service::replay_shed_schedule(opt, got.schedule));
      if (!have_ref) {
        ref = got;
        have_ref = true;
      } else {
        // The schedule is fixed, so every thread count must reproduce the
        // whole outcome: verdicts, schedule, and served digests.
        EXPECT_EQ(got.verdicts, ref.verdicts) << "threads " << threads;
        EXPECT_EQ(got.schedule, ref.schedule) << "threads " << threads;
        EXPECT_EQ(got.served, ref.served) << "threads " << threads;
      }
    }

    // Served results are bit-identical to the sequential single-query
    // oracle: admission never changes content (digests exclude telemetry).
    set_num_threads(1);
    EXPECT_FALSE(ref.served.empty());
    for (const auto& [id, digest] : ref.served) {
      const auto it = by_id.find(id);
      ASSERT_NE(it, by_id.end());
      EXPECT_EQ(digest, oracle.run(it->second).digest()) << "id " << id;
    }
  }
}

TEST(StreamingService, ConcurrentSubmittersReplayIdentically) {
  const auto snap = small_snapshot();
  const StreamingOptions opt = two_tier_options(/*drain_thread=*/true);
  StreamingService svc(ShortcutService(snap, 7), opt);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::vector<std::pair<QueryRequest, StreamingService::Ticket>>> kept(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&svc, &kept, t] {
      Rng rng(500 + t);
      for (int i = 0; i < kPerThread; ++i) {
        QueryRequest q;
        q.id = 10000 + static_cast<std::uint64_t>(t) * 1000 + i;  // disjoint ids
        q.kind = static_cast<QueryKind>(rng() % 4);
        const char* tenant = (rng() % 4 == 0) ? "bronze" : "gold";
        StreamingService::Ticket ticket = svc.submit(tenant, q);
        if (ticket.admitted()) kept[t].emplace_back(q, std::move(ticket));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  svc.stop();  // drains the backlog; admitted queries are never dropped

  const ShortcutService oracle(snap, 7);
  std::uint64_t served = 0;
  for (const auto& bucket : kept) {
    for (const auto& [req, ticket] : bucket) {
      const QueryResult got = svc.wait(ticket);
      EXPECT_EQ(got.id, req.id);
      EXPECT_EQ(got.digest(), oracle.run(req).digest()) << "id " << req.id;
      ++served;
    }
  }
  EXPECT_GT(served, 0u);

  // Whatever arrival interleaving the race produced became the schedule —
  // and the schedule is all that matters: the journal re-folds exactly.
  EXPECT_EQ(svc.verdicts(), service::replay_shed_schedule(opt, svc.schedule()));

  // Conservation across tenants: every arrival is admitted or shed, every
  // admitted query was served by the stop() drain.
  std::uint64_t admitted = 0, arrivals = 0;
  for (const service::TenantStats& st : svc.tenant_stats()) {
    EXPECT_EQ(st.counters.arrivals,
              st.counters.admitted + st.counters.shed_queue_full +
                  st.counters.shed_rate_limited);
    EXPECT_EQ(st.served, st.counters.admitted);
    admitted += st.counters.admitted;
    arrivals += st.counters.arrivals;
  }
  EXPECT_EQ(arrivals, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(admitted, served);
  EXPECT_EQ(svc.queue_depth(), 0u);
}

// Determinism-contract point 9 for the s–t kind specifically: routing an
// all-kPointToPoint stream through admission (generous budgets — nothing
// shed) yields digests bit-identical to a direct run_batch over the same
// requests, at 1, 2 and 8 threads.
TEST(StreamingService, PointToPointAdmissionMatchesDirectBatch) {
  const auto snap = small_snapshot();
  StreamingOptions opt;
  opt.drain_thread = false;  // manual pump below
  opt.cheap_slots = 4;
  opt.heavy_slots = 1;
  opt.tenants = {TenantConfig{"gold", TokenBucketConfig{64, 100000},
                              TokenBucketConfig{8, 100000}}};
  std::vector<QueryRequest> batch;
  Rng pick(53);
  for (std::uint32_t i = 0; i < 20; ++i) {
    QueryRequest q;
    q.id = 40000 + i;
    q.kind = QueryKind::kPointToPoint;
    q.s = static_cast<std::uint32_t>(pick.uniform(snap->num_vertices()));
    q.t = static_cast<std::uint32_t>(pick.uniform(snap->num_vertices()));
    batch.push_back(q);
  }
  const ShortcutService direct(snap, 7);
  const std::vector<QueryResult> want = direct.run_batch(batch);

  ThreadOverrideGuard guard;
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    StreamingService svc(ShortcutService(snap, 7), opt);
    std::vector<StreamingService::Ticket> tickets;
    for (const QueryRequest& q : batch) {
      StreamingService::Ticket t = svc.submit("gold", q);
      ASSERT_TRUE(t.admitted()) << t.shed_text();
      tickets.push_back(std::move(t));
    }
    svc.drain_until_idle();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const QueryResult got = svc.wait(tickets[i]);
      ASSERT_TRUE(got.ok) << got.error;
      EXPECT_EQ(got.digest(), want[i].digest())
          << "id " << batch[i].id << " at " << threads << " threads";
    }
  }
}

// --- service misuse + lifecycle ----------------------------------------------

TEST(StreamingService, EmptyWavesAdvanceTheClockAndAreJournaled) {
  const auto snap = small_snapshot();
  StreamingService svc(ShortcutService(snap, 7), two_tier_options());
  svc.drain_wave();
  svc.drain_wave();
  EXPECT_EQ(svc.waves_completed(), 2u);
  EXPECT_EQ(svc.schedule().size(), 2u);
  EXPECT_TRUE(svc.verdicts().empty());
  EXPECT_EQ(svc.wave_records().size(), 2u);
}

TEST(StreamingService, SubmitAfterStopThrows) {
  const auto snap = small_snapshot();
  StreamingService svc(ShortcutService(snap, 7), two_tier_options(/*drain_thread=*/true));
  svc.stop();
  QueryRequest q;
  q.id = 1;
  EXPECT_THROW(svc.submit("gold", q), std::invalid_argument);
}

TEST(StreamingService, ManualPumpIsRejectedWithDrainThread) {
  const auto snap = small_snapshot();
  StreamingService svc(ShortcutService(snap, 7), two_tier_options(/*drain_thread=*/true));
  EXPECT_THROW(svc.drain_wave(), std::invalid_argument);
  EXPECT_THROW(svc.drain_until_idle(), std::invalid_argument);
}

TEST(StreamingService, WaitOnShedTicketThrows) {
  const auto snap = small_snapshot();
  StreamingService svc(ShortcutService(snap, 7), two_tier_options());
  QueryRequest q;
  q.id = 1;
  const StreamingService::Ticket shed = svc.submit("ghost", q);
  EXPECT_FALSE(shed.admitted());
  EXPECT_EQ(shed.verdict().reason, ShedReason::kUnknownTenant);
  EXPECT_EQ(shed.shed_text(), "shed: unknown tenant 'ghost'");
  EXPECT_THROW(svc.wait(shed), std::invalid_argument);
}

}  // namespace
