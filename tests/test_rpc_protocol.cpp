// RPC protocol coverage (PR 7): framing, corruption rejection, transport,
// and the wire codec.
//
// The contract under test: a frame survives encode → decode bit-exactly;
// every way of corrupting the bytes — flips, truncations, oversized
// lengths, version skew, trailing garbage — is rejected with the exact
// deterministic "rpc: ..." message the format documents, never a crash,
// hang or huge allocation; and the QueryRequest/QueryResult wire codec is
// a lossless round trip with the same strictness.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "rpc/frame.hpp"
#include "rpc/shard.hpp"
#include "rpc/transport.hpp"
#include "service/service.hpp"
#include "service/wire.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace {

using namespace lcs;
using rpc::Endpoint;
using rpc::Frame;
using rpc::FrameType;
using rpc::Socket;
using rpc::kFrameHeaderBytes;
using rpc::kMaxFramePayloadBytes;

std::vector<std::byte> random_payload(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(size);
  for (std::size_t i = 0; i < size; ++i)
    out[i] = static_cast<std::byte>(rng() & 0xff);
  return out;
}

Frame make_frame(FrameType type, std::vector<std::byte> payload) {
  Frame f;
  f.type = type;
  f.payload = std::move(payload);
  return f;
}

/// The exact message decode_frame throws for `bytes`, or "" when it
/// succeeds — the corruption matrix asserts on these verbatim.
std::string decode_error(const std::vector<std::byte>& bytes) {
  try {
    (void)rpc::decode_frame(bytes.data(), bytes.size());
    return "";
  } catch (const std::runtime_error& e) {
    return e.what();
  }
}

/// Field offsets of the 32-byte wire header (documented in rpc/frame.hpp).
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffType = 5;
constexpr std::size_t kOffReserved = 6;
constexpr std::size_t kOffPayloadBytes = 8;
constexpr std::size_t kOffHeaderChecksum = 24;

/// Rewrite the header checksum after a deliberate field edit, so the test
/// reaches the validation step after the checksum instead of tripping it.
void reseal_header(std::vector<std::byte>& bytes) {
  std::memset(bytes.data() + kOffHeaderChecksum, 0, 8);
  const std::uint64_t sum = checksum_bytes(bytes.data(), kFrameHeaderBytes);
  std::memcpy(bytes.data() + kOffHeaderChecksum, &sum, 8);
}

// ---------------------------------------------------------------------------
// Frame round trips

TEST(RpcFrame, RoundTripsEveryTypeAndSize) {
  const FrameType types[] = {FrameType::kHello,   FrameType::kHelloAck,
                             FrameType::kRunBatch, FrameType::kResults,
                             FrameType::kError,    FrameType::kShutdown,
                             FrameType::kShutdownAck};
  const std::size_t sizes[] = {0, 1, 7, 8, 31, 32, 33, 1000, 65536};
  std::uint64_t seed = 1;
  for (const FrameType type : types) {
    for (const std::size_t size : sizes) {
      const Frame in = make_frame(type, random_payload(size, seed++));
      const std::vector<std::byte> bytes = rpc::encode_frame(in);
      ASSERT_EQ(bytes.size(), kFrameHeaderBytes + size);
      const Frame out = rpc::decode_frame(bytes.data(), bytes.size());
      EXPECT_EQ(out.type, in.type);
      EXPECT_EQ(out.payload, in.payload);
    }
  }
}

TEST(RpcFrame, EncodingIsDeterministic) {
  const Frame f = make_frame(FrameType::kRunBatch, random_payload(257, 9));
  EXPECT_EQ(rpc::encode_frame(f), rpc::encode_frame(f));
}

TEST(RpcFrame, StreamingDecodeMatchesWholeFrameDecode) {
  const Frame in = make_frame(FrameType::kResults, random_payload(513, 3));
  const std::vector<std::byte> bytes = rpc::encode_frame(in);
  const rpc::FrameHeader header = rpc::decode_frame_header(bytes.data(), kFrameHeaderBytes);
  EXPECT_EQ(header.type, in.type);
  EXPECT_EQ(header.payload_bytes, in.payload.size());
  rpc::verify_frame_payload(header, bytes.data() + kFrameHeaderBytes,
                            bytes.size() - kFrameHeaderBytes);
}

// ---------------------------------------------------------------------------
// Corruption matrix

TEST(RpcFrame, EveryTruncationIsRejected) {
  const std::vector<std::byte> bytes =
      rpc::encode_frame(make_frame(FrameType::kRunBatch, random_payload(100, 4)));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::byte> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_EQ(decode_error(cut), "rpc: frame truncated") << "at length " << len;
  }
}

TEST(RpcFrame, EverySingleByteFlipIsRejected) {
  const std::vector<std::byte> bytes =
      rpc::encode_frame(make_frame(FrameType::kResults, random_payload(64, 5)));
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::vector<std::byte> flipped = bytes;
      flipped[at] ^= static_cast<std::byte>(1u << bit);
      const std::string error = decode_error(flipped);
      EXPECT_FALSE(error.empty()) << "flip at byte " << at << " bit " << bit << " was accepted";
      EXPECT_EQ(error.rfind("rpc: ", 0), 0u) << error;
    }
  }
}

TEST(RpcFrame, TrailingBytesAreRejected) {
  std::vector<std::byte> bytes =
      rpc::encode_frame(make_frame(FrameType::kHello, {}));
  bytes.push_back(std::byte{0});
  EXPECT_EQ(decode_error(bytes), "rpc: frame has trailing bytes");
}

TEST(RpcFrame, ExactMessagesPerValidationStep) {
  const std::vector<std::byte> good =
      rpc::encode_frame(make_frame(FrameType::kError, random_payload(16, 6)));

  std::vector<std::byte> bad_magic = good;
  bad_magic[0] = std::byte{'X'};
  EXPECT_EQ(decode_error(bad_magic), "rpc: bad frame magic");

  std::vector<std::byte> skewed = good;
  skewed[kOffVersion] = std::byte{2};
  reseal_header(skewed);
  EXPECT_EQ(decode_error(skewed), "rpc: unsupported protocol version 2");

  std::vector<std::byte> reserved = good;
  reserved[kOffReserved] = std::byte{1};
  reseal_header(reserved);
  EXPECT_EQ(decode_error(reserved), "rpc: reserved frame bits set");

  std::vector<std::byte> bad_type = good;
  bad_type[kOffType] = std::byte{0};
  reseal_header(bad_type);
  EXPECT_EQ(decode_error(bad_type), "rpc: unknown frame type 0");
  bad_type[kOffType] = std::byte{200};
  reseal_header(bad_type);
  EXPECT_EQ(decode_error(bad_type), "rpc: unknown frame type 200");

  // An oversized length prefix must be rejected before any allocation —
  // this is the frame that would otherwise drive a reader into a huge
  // resize.
  std::vector<std::byte> oversized = good;
  const std::uint64_t huge = kMaxFramePayloadBytes + 1;
  std::memcpy(oversized.data() + kOffPayloadBytes, &huge, 8);
  reseal_header(oversized);
  EXPECT_EQ(decode_error(oversized),
            "rpc: frame payload too large (" + std::to_string(huge) + " bytes)");

  std::vector<std::byte> bad_header_sum = good;
  bad_header_sum[kOffHeaderChecksum] ^= std::byte{1};
  EXPECT_EQ(decode_error(bad_header_sum), "rpc: frame header checksum mismatch");

  std::vector<std::byte> bad_payload = good;
  bad_payload[kFrameHeaderBytes + 3] ^= std::byte{0x10};
  EXPECT_EQ(decode_error(bad_payload), "rpc: frame payload checksum mismatch");
}

// ---------------------------------------------------------------------------
// Transport

TEST(RpcTransport, SocketpairRoundTripsFrames) {
  auto [a, b] = Socket::make_pair();
  const Frame sent = make_frame(FrameType::kRunBatch, random_payload(2048, 7));
  a.send_frame(sent);
  a.send_frame(make_frame(FrameType::kShutdown, {}));
  const Frame first = b.recv_frame();
  EXPECT_EQ(first.type, sent.type);
  EXPECT_EQ(first.payload, sent.payload);
  EXPECT_EQ(b.recv_frame().type, FrameType::kShutdown);
}

TEST(RpcTransport, EofAtFrameBoundaryIsConnectionClosed) {
  auto [a, b] = Socket::make_pair();
  a.close();
  try {
    (void)b.recv_frame();
    FAIL() << "recv_frame on a closed peer returned";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rpc: connection closed");
  }
}

TEST(RpcTransport, EofMidFrameIsConnectionLost) {
  auto [a, b] = Socket::make_pair();
  const std::vector<std::byte> bytes =
      rpc::encode_frame(make_frame(FrameType::kResults, random_payload(100, 8)));
  // Deliver only half the frame, then hang up.
  const ssize_t wrote = ::write(a.fd(), bytes.data(), bytes.size() / 2);
  ASSERT_EQ(wrote, static_cast<ssize_t>(bytes.size() / 2));
  a.close();
  try {
    (void)b.recv_frame();
    FAIL() << "recv_frame on a torn frame returned";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rpc: connection lost");
  }
}

TEST(RpcTransport, ListenerAcceptsAndCrossThreadCloseUnblocks) {
  const Endpoint ep = Endpoint::parse("tcp:127.0.0.1:0");
  rpc::Listener listener = rpc::Listener::listen(ep);
  ASSERT_TRUE(listener.valid());
  ASSERT_GT(listener.endpoint().port, 0) << "ephemeral port not resolved";

  std::thread client([spec = listener.endpoint()] {
    Socket s = rpc::connect_endpoint(spec);
    s.send_frame(Frame{FrameType::kHello, {}});
  });
  Socket conn = listener.accept();
  ASSERT_TRUE(conn.valid());
  EXPECT_EQ(conn.recv_frame().type, FrameType::kHello);
  client.join();

  // close() from another thread must unblock a pending accept().
  std::thread closer([&listener] { listener.close(); });
  Socket none = listener.accept();
  EXPECT_FALSE(none.valid());
  closer.join();
  EXPECT_FALSE(listener.valid());
}

TEST(RpcTransport, EndpointParseAndDescribe) {
  const Endpoint u = Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(u.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(u.describe(), "unix:/tmp/x.sock");

  const Endpoint t = Endpoint::parse("tcp:localhost:9001");
  EXPECT_EQ(t.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(t.host, "localhost");
  EXPECT_EQ(t.port, 9001);
  EXPECT_EQ(t.describe(), "tcp:localhost:9001");

  EXPECT_THROW(Endpoint::parse("http:foo"), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("unix:"), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("tcp:nohost"), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("tcp:h:99999"), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("tcp:h:12x"), std::invalid_argument);
}

TEST(RpcTransport, EndpointParseRejectionMessagesAreExact) {
  const auto parse_error = [](const std::string& spec) {
    try {
      (void)Endpoint::parse(spec);
      return std::string();
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
  };
  EXPECT_EQ(parse_error("unix:"), "rpc: bad endpoint 'unix:' (empty unix path)");
  EXPECT_EQ(parse_error("tcp:nohost"), "rpc: bad endpoint 'tcp:nohost' (want tcp:host:port)");
  EXPECT_EQ(parse_error("tcp::123"), "rpc: bad endpoint 'tcp::123' (want tcp:host:port)");
  EXPECT_EQ(parse_error("tcp:h:"), "rpc: bad endpoint 'tcp:h:' (want tcp:host:port)");
  EXPECT_EQ(parse_error("tcp:h:99999"), "rpc: bad endpoint 'tcp:h:99999' (bad port)");
  EXPECT_EQ(parse_error("tcp:h:12x"), "rpc: bad endpoint 'tcp:h:12x' (bad port)");
  EXPECT_EQ(parse_error("http:foo"), "rpc: bad endpoint 'http:foo' (want unix:... or tcp:...)");
  EXPECT_EQ(parse_error(""), "rpc: bad endpoint '' (want unix:... or tcp:...)");
}

// ---------------------------------------------------------------------------
// Socket deadlines (PR 8)

TEST(RpcTransport, RecvDeadlineFiresWithTheConfiguredBudgetInTheText) {
  auto [a, b] = Socket::make_pair();
  b.set_deadlines(0, 50);
  try {
    (void)b.recv_frame();
    FAIL() << "recv_frame returned with nothing to read";
  } catch (const std::runtime_error& e) {
    // The text quotes the *configured* budget, never a measured time.
    EXPECT_STREQ(e.what(), "rpc: deadline exceeded after 50 ms");
  }
  // The deadline fired before any byte was read, so the stream is intact:
  // once the peer does send, the same socket still works.
  a.send_frame(make_frame(FrameType::kHello, {}));
  EXPECT_EQ(b.recv_frame().type, FrameType::kHello);
}

TEST(RpcTransport, SendDeadlineFiresWhenThePeerStopsReading) {
  auto [a, b] = Socket::make_pair();
  a.set_deadlines(50, 0);
  // A payload far past the socketpair buffer: with nobody draining b, the
  // send must hit its deadline instead of blocking forever.
  const Frame big = make_frame(FrameType::kRunBatch, random_payload(8u << 20, 10));
  try {
    a.send_frame(big);
    FAIL() << "oversized send to a stalled peer returned";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rpc: deadline exceeded after 50 ms");
  }
  b.close();
}

TEST(RpcTransport, ConnectCarriesCallDeadlinesOntoTheSocket) {
  rpc::Listener listener = rpc::Listener::listen(Endpoint::parse("tcp:127.0.0.1:0"));
  rpc::DeadlineOptions deadlines;
  deadlines.connect_ms = 2000;
  deadlines.call_ms = 250;
  // The kernel backlog completes the handshake before accept(), so no
  // accept thread is needed just to connect.
  Socket s = rpc::connect_endpoint(listener.endpoint(), deadlines);
  ASSERT_TRUE(s.valid());
  EXPECT_EQ(s.send_deadline_ms(), 250);
  EXPECT_EQ(s.recv_deadline_ms(), 250);
  // Default-connected sockets keep the no-deadline legacy behavior.
  Socket legacy = rpc::connect_endpoint(listener.endpoint());
  EXPECT_EQ(legacy.send_deadline_ms(), 0);
  EXPECT_EQ(legacy.recv_deadline_ms(), 0);
  listener.close();
}

TEST(RpcTransport, RefusedConnectUnderADeadlineIsStillCannotConnect) {
  Endpoint dead;
  {
    rpc::Listener listener = rpc::Listener::listen(Endpoint::parse("tcp:127.0.0.1:0"));
    dead = listener.endpoint();
    listener.close();  // the port is now closed: refusal, not timeout
  }
  rpc::DeadlineOptions deadlines;
  deadlines.connect_ms = 2000;
  try {
    (void)rpc::connect_endpoint(dead, deadlines);
    FAIL() << "connect to a closed port returned";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "rpc: cannot connect to " + dead.describe());
  }
}

// ---------------------------------------------------------------------------
// Server shutdown edges (PR 8)

std::shared_ptr<const service::ShortcutService> tiny_service() {
  Rng rng(5);
  return std::make_shared<const service::ShortcutService>(
      service::GraphSnapshot::build(graph::connected_gnm(60, 150, rng), {}), 7);
}

TEST(RpcShardServer, StopRacesAnInFlightConnection) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("lcs-rpc-stop-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  {
    rpc::ShardServer server(tiny_service(),
                            Endpoint::parse("unix:" + (dir / "s.sock").string()));
    // Connection A: mid-conversation (handshake done, more frames possible).
    Socket a = rpc::connect_endpoint(server.endpoint());
    a.send_frame(make_frame(FrameType::kHello, {}));
    ASSERT_EQ(a.recv_frame().type, FrameType::kHelloAck);
    // Connection B: accepted but never spoke — its server thread is parked
    // in recv_frame.
    Socket b = rpc::connect_endpoint(server.endpoint());
    // stop() must shut both down and join every connection thread without
    // hanging, even though neither client disconnected first.
    server.stop();
    EXPECT_THROW((void)a.recv_frame(), std::runtime_error);
    EXPECT_THROW((void)b.recv_frame(), std::runtime_error);
  }
  std::filesystem::remove_all(dir);
}

TEST(RpcShardServer, ShutdownServerAgainstADeadServerIsBestEffort) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("lcs-rpc-dead-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  {
    const std::string sock = (dir / "s.sock").string();
    auto server = std::make_unique<rpc::ShardServer>(tiny_service(),
                                                     Endpoint::parse("unix:" + sock));
    rpc::RpcShard shard(server->endpoint());
    ASSERT_EQ(shard.info().seed, 7u);
    server.reset();  // the server dies with the connection still open
    shard.shutdown_server();  // must return promptly, not throw or hang
    // A shard that never attached is equally fine to "shut down".
    rpc::RpcShard never(Endpoint::parse("unix:" + (dir / "nothing.sock").string()));
    EXPECT_THROW((void)never.info(), service::ShardUnavailable);
    never.shutdown_server();
  }
  std::filesystem::remove_all(dir);
}

TEST(RpcShardServer, DetachedRpcShardReattachesOnceTheServerIsBack) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("lcs-rpc-re-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  {
    const Endpoint ep = Endpoint::parse("unix:" + (dir / "s.sock").string());
    const auto svc = tiny_service();
    // Dialed while nothing listens: constructing is fine, using throws the
    // deterministic connect error, reattach() keeps failing...
    rpc::RpcShard shard(ep);
    try {
      (void)shard.info();
      FAIL() << "info() on a detached shard returned";
    } catch (const service::ShardUnavailable& e) {
      EXPECT_EQ(std::string(e.what()), "rpc: cannot connect to " + ep.describe());
    }
    EXPECT_THROW((void)shard.reattach(), service::ShardUnavailable);
    // ...until the server appears, when the same backend object recovers.
    rpc::ShardServer server(svc, ep);
    const service::ShardInfo info = shard.reattach();
    EXPECT_EQ(info.seed, 7u);
    EXPECT_EQ(info.fingerprint, svc->snapshot().fingerprint());
    shard.send_batch({});
    EXPECT_TRUE(shard.gather().empty());
    server.stop();
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Wire codec

std::vector<service::QueryRequest> sample_requests() {
  std::vector<service::QueryRequest> batch;
  service::QueryRequest a;
  a.id = 42;
  a.kind = service::QueryKind::kShortcutQuality;
  a.beta = 1.25;
  a.num_parts = 9;
  batch.push_back(a);
  service::QueryRequest b;
  b.id = 7;
  b.kind = service::QueryKind::kMincut;
  b.karger_trials = 3;
  b.eps = 0.75;
  b.diameter = 11;
  batch.push_back(b);
  service::QueryRequest c;
  c.id = 9;
  c.kind = service::QueryKind::kPointToPoint;
  c.s = 4;
  c.t = 31;
  batch.push_back(c);
  return batch;
}

TEST(RpcWire, RequestsRoundTrip) {
  const auto batch = sample_requests();
  const std::vector<std::byte> bytes = service::encode_requests(batch);
  const auto out = service::decode_requests(bytes.data(), bytes.size());
  ASSERT_EQ(out.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(out[i].id, batch[i].id);
    EXPECT_EQ(out[i].kind, batch[i].kind);
    EXPECT_EQ(out[i].beta, batch[i].beta);
    EXPECT_EQ(out[i].num_parts, batch[i].num_parts);
    EXPECT_EQ(out[i].diameter, batch[i].diameter);
    EXPECT_EQ(out[i].karger_trials, batch[i].karger_trials);
    EXPECT_EQ(out[i].eps, batch[i].eps);
    EXPECT_EQ(out[i].s, batch[i].s);
    EXPECT_EQ(out[i].t, batch[i].t);
  }
}

TEST(RpcWire, EmptyBatchRoundTrips) {
  const std::vector<std::byte> bytes = service::encode_requests({});
  ASSERT_EQ(bytes.size(), 8u);  // just the count prefix
  EXPECT_TRUE(service::decode_requests(bytes.data(), bytes.size()).empty());
  const std::vector<std::byte> rbytes = service::encode_results({});
  EXPECT_TRUE(service::decode_results(rbytes.data(), rbytes.size()).empty());
}

TEST(RpcWire, ResultsRoundTripIncludingDigest) {
  std::vector<service::QueryResult> results(2);
  results[0].id = 1;
  results[0].kind = service::QueryKind::kMst;
  results[0].ok = true;
  results[0].latency_ms = 1.5;
  results[0].value = 777;
  results[0].cardinality = 9;
  results[0].rounds = 31;
  results[0].content_hash = 0xabcdef;
  results[1].id = 2;
  results[1].kind = service::QueryKind::kMincut;
  results[1].ok = false;
  results[1].error = "mincut needs a connected graph";
  results.emplace_back();
  results[2].id = 3;
  results[2].kind = service::QueryKind::kPointToPoint;
  results[2].ok = true;
  results[2].s = 12;
  results[2].t = 60;
  results[2].distance = 0xdeadbeefULL;
  results[2].settled_nodes = 450;
  const std::vector<std::byte> bytes = service::encode_results(results);
  const auto out = service::decode_results(bytes.data(), bytes.size());
  ASSERT_EQ(out.size(), results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(out[i].digest(), results[i].digest()) << "result " << i;
    EXPECT_EQ(out[i].latency_ms, results[i].latency_ms);
    EXPECT_EQ(out[i].error, results[i].error);
  }
  EXPECT_EQ(out[2].s, 12u);
  EXPECT_EQ(out[2].t, 60u);
  EXPECT_EQ(out[2].distance, 0xdeadbeefULL);
  EXPECT_EQ(out[2].settled_nodes, 450u);
}

TEST(RpcWire, MalformedPayloadsAreRejectedDeterministically) {
  const std::vector<std::byte> bytes = service::encode_requests(sample_requests());

  std::vector<std::byte> trailing = bytes;
  trailing.push_back(std::byte{0});
  try {
    (void)service::decode_requests(trailing.data(), trailing.size());
    FAIL() << "trailing bytes accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rpc: wire payload has trailing bytes");
  }

  std::vector<std::byte> truncated(bytes.begin(), bytes.end() - 4);
  EXPECT_THROW((void)service::decode_requests(truncated.data(), truncated.size()),
               std::runtime_error);

  // A corrupted count prefix must not drive a huge reserve.
  std::vector<std::byte> huge_count = bytes;
  const std::uint64_t huge = ~0ull;
  std::memcpy(huge_count.data(), &huge, 8);
  try {
    (void)service::decode_requests(huge_count.data(), huge_count.size());
    FAIL() << "huge count accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rpc: wire count exceeds payload");
  }

  // Unknown query kind (offset: count u64 + id u64 = byte 16).  The decoder
  // fails closed through checked_query_kind with its exact error text.
  for (const std::uint8_t raw : {std::uint8_t{5}, std::uint8_t{200}, std::uint8_t{255}}) {
    std::vector<std::byte> bad_kind = bytes;
    bad_kind[16] = std::byte{raw};
    try {
      (void)service::decode_requests(bad_kind.data(), bad_kind.size());
      FAIL() << "unknown kind accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()), "wire: unknown query kind " + std::to_string(raw));
    }
  }

  // The same corruption in a result payload is rejected identically (the
  // result kind byte also sits right after count u64 + id u64).
  service::QueryResult res;
  res.id = 4;
  res.kind = service::QueryKind::kPointToPoint;
  res.ok = true;
  std::vector<std::byte> result_bytes = service::encode_results({res});
  result_bytes[16] = std::byte{7};
  try {
    (void)service::decode_results(result_bytes.data(), result_bytes.size());
    FAIL() << "unknown kind accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "wire: unknown query kind 7");
  }
}

}  // namespace
