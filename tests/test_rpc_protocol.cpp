// RPC protocol coverage (PR 7): framing, corruption rejection, transport,
// and the wire codec.
//
// The contract under test: a frame survives encode → decode bit-exactly;
// every way of corrupting the bytes — flips, truncations, oversized
// lengths, version skew, trailing garbage — is rejected with the exact
// deterministic "rpc: ..." message the format documents, never a crash,
// hang or huge allocation; and the QueryRequest/QueryResult wire codec is
// a lossless round trip with the same strictness.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "rpc/frame.hpp"
#include "rpc/transport.hpp"
#include "service/wire.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace {

using namespace lcs;
using rpc::Endpoint;
using rpc::Frame;
using rpc::FrameType;
using rpc::Socket;
using rpc::kFrameHeaderBytes;
using rpc::kMaxFramePayloadBytes;

std::vector<std::byte> random_payload(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(size);
  for (std::size_t i = 0; i < size; ++i)
    out[i] = static_cast<std::byte>(rng() & 0xff);
  return out;
}

Frame make_frame(FrameType type, std::vector<std::byte> payload) {
  Frame f;
  f.type = type;
  f.payload = std::move(payload);
  return f;
}

/// The exact message decode_frame throws for `bytes`, or "" when it
/// succeeds — the corruption matrix asserts on these verbatim.
std::string decode_error(const std::vector<std::byte>& bytes) {
  try {
    (void)rpc::decode_frame(bytes.data(), bytes.size());
    return "";
  } catch (const std::runtime_error& e) {
    return e.what();
  }
}

/// Field offsets of the 32-byte wire header (documented in rpc/frame.hpp).
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffType = 5;
constexpr std::size_t kOffReserved = 6;
constexpr std::size_t kOffPayloadBytes = 8;
constexpr std::size_t kOffHeaderChecksum = 24;

/// Rewrite the header checksum after a deliberate field edit, so the test
/// reaches the validation step after the checksum instead of tripping it.
void reseal_header(std::vector<std::byte>& bytes) {
  std::memset(bytes.data() + kOffHeaderChecksum, 0, 8);
  const std::uint64_t sum = checksum_bytes(bytes.data(), kFrameHeaderBytes);
  std::memcpy(bytes.data() + kOffHeaderChecksum, &sum, 8);
}

// ---------------------------------------------------------------------------
// Frame round trips

TEST(RpcFrame, RoundTripsEveryTypeAndSize) {
  const FrameType types[] = {FrameType::kHello,   FrameType::kHelloAck,
                             FrameType::kRunBatch, FrameType::kResults,
                             FrameType::kError,    FrameType::kShutdown,
                             FrameType::kShutdownAck};
  const std::size_t sizes[] = {0, 1, 7, 8, 31, 32, 33, 1000, 65536};
  std::uint64_t seed = 1;
  for (const FrameType type : types) {
    for (const std::size_t size : sizes) {
      const Frame in = make_frame(type, random_payload(size, seed++));
      const std::vector<std::byte> bytes = rpc::encode_frame(in);
      ASSERT_EQ(bytes.size(), kFrameHeaderBytes + size);
      const Frame out = rpc::decode_frame(bytes.data(), bytes.size());
      EXPECT_EQ(out.type, in.type);
      EXPECT_EQ(out.payload, in.payload);
    }
  }
}

TEST(RpcFrame, EncodingIsDeterministic) {
  const Frame f = make_frame(FrameType::kRunBatch, random_payload(257, 9));
  EXPECT_EQ(rpc::encode_frame(f), rpc::encode_frame(f));
}

TEST(RpcFrame, StreamingDecodeMatchesWholeFrameDecode) {
  const Frame in = make_frame(FrameType::kResults, random_payload(513, 3));
  const std::vector<std::byte> bytes = rpc::encode_frame(in);
  const rpc::FrameHeader header = rpc::decode_frame_header(bytes.data(), kFrameHeaderBytes);
  EXPECT_EQ(header.type, in.type);
  EXPECT_EQ(header.payload_bytes, in.payload.size());
  rpc::verify_frame_payload(header, bytes.data() + kFrameHeaderBytes,
                            bytes.size() - kFrameHeaderBytes);
}

// ---------------------------------------------------------------------------
// Corruption matrix

TEST(RpcFrame, EveryTruncationIsRejected) {
  const std::vector<std::byte> bytes =
      rpc::encode_frame(make_frame(FrameType::kRunBatch, random_payload(100, 4)));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::byte> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_EQ(decode_error(cut), "rpc: frame truncated") << "at length " << len;
  }
}

TEST(RpcFrame, EverySingleByteFlipIsRejected) {
  const std::vector<std::byte> bytes =
      rpc::encode_frame(make_frame(FrameType::kResults, random_payload(64, 5)));
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::vector<std::byte> flipped = bytes;
      flipped[at] ^= static_cast<std::byte>(1u << bit);
      const std::string error = decode_error(flipped);
      EXPECT_FALSE(error.empty()) << "flip at byte " << at << " bit " << bit << " was accepted";
      EXPECT_EQ(error.rfind("rpc: ", 0), 0u) << error;
    }
  }
}

TEST(RpcFrame, TrailingBytesAreRejected) {
  std::vector<std::byte> bytes =
      rpc::encode_frame(make_frame(FrameType::kHello, {}));
  bytes.push_back(std::byte{0});
  EXPECT_EQ(decode_error(bytes), "rpc: frame has trailing bytes");
}

TEST(RpcFrame, ExactMessagesPerValidationStep) {
  const std::vector<std::byte> good =
      rpc::encode_frame(make_frame(FrameType::kError, random_payload(16, 6)));

  std::vector<std::byte> bad_magic = good;
  bad_magic[0] = std::byte{'X'};
  EXPECT_EQ(decode_error(bad_magic), "rpc: bad frame magic");

  std::vector<std::byte> skewed = good;
  skewed[kOffVersion] = std::byte{2};
  reseal_header(skewed);
  EXPECT_EQ(decode_error(skewed), "rpc: unsupported protocol version 2");

  std::vector<std::byte> reserved = good;
  reserved[kOffReserved] = std::byte{1};
  reseal_header(reserved);
  EXPECT_EQ(decode_error(reserved), "rpc: reserved frame bits set");

  std::vector<std::byte> bad_type = good;
  bad_type[kOffType] = std::byte{0};
  reseal_header(bad_type);
  EXPECT_EQ(decode_error(bad_type), "rpc: unknown frame type 0");
  bad_type[kOffType] = std::byte{200};
  reseal_header(bad_type);
  EXPECT_EQ(decode_error(bad_type), "rpc: unknown frame type 200");

  // An oversized length prefix must be rejected before any allocation —
  // this is the frame that would otherwise drive a reader into a huge
  // resize.
  std::vector<std::byte> oversized = good;
  const std::uint64_t huge = kMaxFramePayloadBytes + 1;
  std::memcpy(oversized.data() + kOffPayloadBytes, &huge, 8);
  reseal_header(oversized);
  EXPECT_EQ(decode_error(oversized),
            "rpc: frame payload too large (" + std::to_string(huge) + " bytes)");

  std::vector<std::byte> bad_header_sum = good;
  bad_header_sum[kOffHeaderChecksum] ^= std::byte{1};
  EXPECT_EQ(decode_error(bad_header_sum), "rpc: frame header checksum mismatch");

  std::vector<std::byte> bad_payload = good;
  bad_payload[kFrameHeaderBytes + 3] ^= std::byte{0x10};
  EXPECT_EQ(decode_error(bad_payload), "rpc: frame payload checksum mismatch");
}

// ---------------------------------------------------------------------------
// Transport

TEST(RpcTransport, SocketpairRoundTripsFrames) {
  auto [a, b] = Socket::make_pair();
  const Frame sent = make_frame(FrameType::kRunBatch, random_payload(2048, 7));
  a.send_frame(sent);
  a.send_frame(make_frame(FrameType::kShutdown, {}));
  const Frame first = b.recv_frame();
  EXPECT_EQ(first.type, sent.type);
  EXPECT_EQ(first.payload, sent.payload);
  EXPECT_EQ(b.recv_frame().type, FrameType::kShutdown);
}

TEST(RpcTransport, EofAtFrameBoundaryIsConnectionClosed) {
  auto [a, b] = Socket::make_pair();
  a.close();
  try {
    (void)b.recv_frame();
    FAIL() << "recv_frame on a closed peer returned";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rpc: connection closed");
  }
}

TEST(RpcTransport, EofMidFrameIsConnectionLost) {
  auto [a, b] = Socket::make_pair();
  const std::vector<std::byte> bytes =
      rpc::encode_frame(make_frame(FrameType::kResults, random_payload(100, 8)));
  // Deliver only half the frame, then hang up.
  const ssize_t wrote = ::write(a.fd(), bytes.data(), bytes.size() / 2);
  ASSERT_EQ(wrote, static_cast<ssize_t>(bytes.size() / 2));
  a.close();
  try {
    (void)b.recv_frame();
    FAIL() << "recv_frame on a torn frame returned";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rpc: connection lost");
  }
}

TEST(RpcTransport, ListenerAcceptsAndCrossThreadCloseUnblocks) {
  const Endpoint ep = Endpoint::parse("tcp:127.0.0.1:0");
  rpc::Listener listener = rpc::Listener::listen(ep);
  ASSERT_TRUE(listener.valid());
  ASSERT_GT(listener.endpoint().port, 0) << "ephemeral port not resolved";

  std::thread client([spec = listener.endpoint()] {
    Socket s = rpc::connect_endpoint(spec);
    s.send_frame(Frame{FrameType::kHello, {}});
  });
  Socket conn = listener.accept();
  ASSERT_TRUE(conn.valid());
  EXPECT_EQ(conn.recv_frame().type, FrameType::kHello);
  client.join();

  // close() from another thread must unblock a pending accept().
  std::thread closer([&listener] { listener.close(); });
  Socket none = listener.accept();
  EXPECT_FALSE(none.valid());
  closer.join();
  EXPECT_FALSE(listener.valid());
}

TEST(RpcTransport, EndpointParseAndDescribe) {
  const Endpoint u = Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(u.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(u.describe(), "unix:/tmp/x.sock");

  const Endpoint t = Endpoint::parse("tcp:localhost:9001");
  EXPECT_EQ(t.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(t.host, "localhost");
  EXPECT_EQ(t.port, 9001);
  EXPECT_EQ(t.describe(), "tcp:localhost:9001");

  EXPECT_THROW(Endpoint::parse("http:foo"), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("unix:"), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("tcp:nohost"), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("tcp:h:99999"), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("tcp:h:12x"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Wire codec

std::vector<service::QueryRequest> sample_requests() {
  std::vector<service::QueryRequest> batch;
  service::QueryRequest a;
  a.id = 42;
  a.kind = service::QueryKind::kShortcutQuality;
  a.beta = 1.25;
  a.num_parts = 9;
  batch.push_back(a);
  service::QueryRequest b;
  b.id = 7;
  b.kind = service::QueryKind::kMincut;
  b.karger_trials = 3;
  b.eps = 0.75;
  b.diameter = 11;
  batch.push_back(b);
  return batch;
}

TEST(RpcWire, RequestsRoundTrip) {
  const auto batch = sample_requests();
  const std::vector<std::byte> bytes = service::encode_requests(batch);
  const auto out = service::decode_requests(bytes.data(), bytes.size());
  ASSERT_EQ(out.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(out[i].id, batch[i].id);
    EXPECT_EQ(out[i].kind, batch[i].kind);
    EXPECT_EQ(out[i].beta, batch[i].beta);
    EXPECT_EQ(out[i].num_parts, batch[i].num_parts);
    EXPECT_EQ(out[i].diameter, batch[i].diameter);
    EXPECT_EQ(out[i].karger_trials, batch[i].karger_trials);
    EXPECT_EQ(out[i].eps, batch[i].eps);
  }
}

TEST(RpcWire, EmptyBatchRoundTrips) {
  const std::vector<std::byte> bytes = service::encode_requests({});
  ASSERT_EQ(bytes.size(), 8u);  // just the count prefix
  EXPECT_TRUE(service::decode_requests(bytes.data(), bytes.size()).empty());
  const std::vector<std::byte> rbytes = service::encode_results({});
  EXPECT_TRUE(service::decode_results(rbytes.data(), rbytes.size()).empty());
}

TEST(RpcWire, ResultsRoundTripIncludingDigest) {
  std::vector<service::QueryResult> results(2);
  results[0].id = 1;
  results[0].kind = service::QueryKind::kMst;
  results[0].ok = true;
  results[0].latency_ms = 1.5;
  results[0].value = 777;
  results[0].cardinality = 9;
  results[0].rounds = 31;
  results[0].content_hash = 0xabcdef;
  results[1].id = 2;
  results[1].kind = service::QueryKind::kMincut;
  results[1].ok = false;
  results[1].error = "mincut needs a connected graph";
  const std::vector<std::byte> bytes = service::encode_results(results);
  const auto out = service::decode_results(bytes.data(), bytes.size());
  ASSERT_EQ(out.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(out[i].digest(), results[i].digest()) << "result " << i;
    EXPECT_EQ(out[i].latency_ms, results[i].latency_ms);
    EXPECT_EQ(out[i].error, results[i].error);
  }
}

TEST(RpcWire, MalformedPayloadsAreRejectedDeterministically) {
  const std::vector<std::byte> bytes = service::encode_requests(sample_requests());

  std::vector<std::byte> trailing = bytes;
  trailing.push_back(std::byte{0});
  try {
    (void)service::decode_requests(trailing.data(), trailing.size());
    FAIL() << "trailing bytes accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rpc: wire payload has trailing bytes");
  }

  std::vector<std::byte> truncated(bytes.begin(), bytes.end() - 4);
  EXPECT_THROW((void)service::decode_requests(truncated.data(), truncated.size()),
               std::runtime_error);

  // A corrupted count prefix must not drive a huge reserve.
  std::vector<std::byte> huge_count = bytes;
  const std::uint64_t huge = ~0ull;
  std::memcpy(huge_count.data(), &huge, 8);
  try {
    (void)service::decode_requests(huge_count.data(), huge_count.size());
    FAIL() << "huge count accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rpc: wire count exceeds payload");
  }

  // Unknown query kind (offset: count u64 + id u64 = byte 16).
  std::vector<std::byte> bad_kind = bytes;
  bad_kind[16] = std::byte{200};
  try {
    (void)service::decode_requests(bad_kind.data(), bad_kind.size());
    FAIL() << "unknown kind accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rpc: unknown query kind 200");
  }
}

}  // namespace
