// Tests for the CONGEST simulator and its building-block programs, checked
// against centralized oracles.
#include <gtest/gtest.h>

#include <algorithm>

#include "congest/multibfs.hpp"
#include "congest/programs.hpp"
#include "congest/simulator.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sssp/sssp.hpp"
#include "util/rng.hpp"

namespace lcs::congest {
namespace {

using graph::Graph;

// --- simulator mechanics ------------------------------------------------------

/// Sends one message from vertex 0 on its first incident edge every round.
class PingProgram : public Program {
 public:
  explicit PingProgram(std::uint32_t sends) : sends_(sends) {}
  void on_round(NodeContext& ctx) override {
    if (ctx.node() != 0 || sent_ >= sends_) {
      received_ += std::count_if(ctx.inbox().begin(), ctx.inbox().end(),
                                 [](const Message& m) { return m.kind == 99; });
      return;
    }
    Message m;
    m.kind = 99;
    ctx.send(ctx.topology().neighbors(0)[0].edge, m);
    ++sent_;
  }
  std::uint32_t sent_ = 0;
  std::uint32_t sends_;
  std::int64_t received_ = 0;
};

TEST(Simulator, DeliversNextRoundAndQuiesces) {
  const Graph g = graph::path_graph(2);
  Simulator sim(g, 1);
  PingProgram p(3);
  const RunStats st = sim.run(p, 100);
  EXPECT_TRUE(st.completed);
  EXPECT_EQ(p.received_, 3);
  EXPECT_EQ(st.messages, 3u);
  EXPECT_LE(st.rounds, 6u);
  EXPECT_EQ(st.max_edge_load, 3u);
}

class FloodProgram : public Program {
 public:
  void on_round(NodeContext& ctx) override {
    if (ctx.node() == 0 && ctx.round() == 0) {
      const auto nbrs = ctx.topology().neighbors(0);
      Message m;
      m.kind = 1;
      ctx.send(nbrs[0].edge, m);
      // Second send on the same edge must violate capacity 1.
      EXPECT_THROW(ctx.send(nbrs[0].edge, m), std::invalid_argument);
    }
  }
};

TEST(Simulator, EnforcesEdgeCapacity) {
  const Graph g = graph::path_graph(2);
  Simulator sim(g, 1);
  FloodProgram p;
  sim.run(p, 4);
}

TEST(Simulator, LargerCapacityAllowsMore) {
  const Graph g = graph::path_graph(2);
  Simulator sim(g, 3);

  class Burst : public Program {
   public:
    void on_round(NodeContext& ctx) override {
      if (ctx.node() == 0 && ctx.round() == 0) {
        const EdgeId e = ctx.topology().neighbors(0)[0].edge;
        Message m;
        for (int i = 0; i < 3; ++i) ctx.send(e, m);
        EXPECT_EQ(ctx.remaining_capacity(e), 0u);
        EXPECT_THROW(ctx.send(e, m), std::invalid_argument);
      }
    }
  } p;
  const RunStats st = sim.run(p, 4);
  EXPECT_EQ(st.messages, 3u);
}

TEST(Simulator, MaxRoundsRespected) {
  const Graph g = graph::path_graph(2);
  Simulator sim(g, 1);
  PingProgram p(1000000);  // never finishes in 10 rounds
  const RunStats st = sim.run(p, 10);
  EXPECT_FALSE(st.completed);
  EXPECT_EQ(st.rounds, 10u);
}

TEST(Simulator, RejectsForeignEdgeSend) {
  const Graph g = graph::path_graph(3);  // edges 0-1, 1-2
  Simulator sim(g, 1);

  class Foreign : public Program {
   public:
    void on_round(NodeContext& ctx) override {
      if (ctx.node() == 0 && ctx.round() == 0) {
        // Edge 1 joins vertices 1 and 2; node 0 is not an endpoint.
        Message m;
        EXPECT_THROW(ctx.send(1, m), std::invalid_argument);
      }
    }
  } p;
  sim.run(p, 2);
}

// --- BfsProgram ------------------------------------------------------------------

class BfsProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(BfsProgramTest, MatchesCentralizedBfs) {
  Rng rng(100 + GetParam());
  const Graph g = graph::connected_gnm(80, 160, rng);
  const graph::VertexId src = static_cast<graph::VertexId>(GetParam() % 80);
  BfsProgram prog(g.num_vertices(), src);
  Simulator sim(g, 1);
  const RunStats st = sim.run(prog, 1000);
  ASSERT_TRUE(st.completed);
  const graph::BfsResult want = graph::bfs(g, src);
  EXPECT_EQ(prog.dist(), want.dist);
  // Rounds ~ eccentricity plus constant bookkeeping slack.
  EXPECT_LE(st.rounds, want.max_dist + 3);
}

INSTANTIATE_TEST_SUITE_P(Sources, BfsProgramTest, ::testing::Values(0, 7, 31, 42, 79));

TEST(BfsProgram, TruncationMatchesCentralized) {
  const Graph g = graph::path_graph(12);
  BfsProgram prog(g.num_vertices(), 0, 5);
  Simulator sim(g, 1);
  sim.run(prog, 100);
  const graph::BfsResult want = graph::bfs_truncated(g, 0, 5);
  EXPECT_EQ(prog.dist(), want.dist);
}

TEST(BfsProgram, ParentsConsistent) {
  Rng rng(3);
  const Graph g = graph::connected_gnm(40, 90, rng);
  BfsProgram prog(g.num_vertices(), 5);
  Simulator sim(g, 1);
  sim.run(prog, 1000);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v == 5) continue;
    ASSERT_NE(prog.parent()[v], graph::kNoVertex);
    EXPECT_EQ(prog.dist()[v], prog.dist()[prog.parent()[v]] + 1);
    EXPECT_EQ(g.other_endpoint(prog.parent_edge()[v], v), prog.parent()[v]);
  }
}

// --- tree programs ------------------------------------------------------------------

RootedTree tree_of(const Graph& g, graph::VertexId root) {
  return RootedTree::from_bfs(g, graph::bfs(g, root), root);
}

TEST(Convergecast, SumOverTree) {
  Rng rng(4);
  const Graph g = graph::connected_gnm(60, 120, rng);
  const RootedTree t = tree_of(g, 0);
  std::vector<std::uint64_t> values(g.num_vertices());
  std::uint64_t want = 0;
  for (std::size_t v = 0; v < values.size(); ++v) {
    values[v] = v * v + 1;
    want += values[v];
  }
  ConvergecastProgram prog(t, values, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  Simulator sim(g, 1);
  const RunStats st = sim.run(prog, 1000);
  ASSERT_TRUE(st.completed);
  EXPECT_EQ(prog.result(), want);
}

TEST(Convergecast, MaxOverTree) {
  Rng rng(5);
  const Graph g = graph::connected_gnm(50, 100, rng);
  const RootedTree t = tree_of(g, 7);
  std::vector<std::uint64_t> values(g.num_vertices());
  for (std::size_t v = 0; v < values.size(); ++v) values[v] = hash64(v) % 1000;
  ConvergecastProgram prog(t, values,
                           [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); });
  Simulator sim(g, 1);
  sim.run(prog, 1000);
  EXPECT_EQ(prog.result(), *std::max_element(values.begin(), values.end()));
}

TEST(Convergecast, RoundsBoundedByDepth) {
  const Graph g = graph::path_graph(30);
  const RootedTree t = tree_of(g, 0);
  std::vector<std::uint64_t> ones(30, 1);
  ConvergecastProgram prog(t, ones, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  Simulator sim(g, 1);
  const RunStats st = sim.run(prog, 1000);
  EXPECT_EQ(prog.result(), 30u);
  EXPECT_LE(st.rounds, 32u);
}

TEST(Broadcast, ReachesAllMembers) {
  Rng rng(6);
  const Graph g = graph::connected_gnm(70, 150, rng);
  const RootedTree t = tree_of(g, 3);
  BroadcastProgram prog(t, 0xabcdef);
  Simulator sim(g, 1);
  const RunStats st = sim.run(prog, 1000);
  ASSERT_TRUE(st.completed);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_TRUE(prog.received(v));
    EXPECT_EQ(prog.value_at(v), 0xabcdefu);
  }
}

TEST(PrefixAssign, RanksAreDfsConsistent) {
  Rng rng(7);
  const Graph g = graph::connected_gnm(60, 140, rng);
  const RootedTree t = tree_of(g, 0);
  std::vector<bool> flagged(g.num_vertices(), false);
  std::vector<graph::VertexId> chosen{2, 11, 17, 23, 42, 55};
  for (const auto v : chosen) flagged[v] = true;
  PrefixAssignProgram prog(t, flagged);
  Simulator sim(g, 1);
  const RunStats st = sim.run(prog, 2000);
  ASSERT_TRUE(st.completed);
  EXPECT_EQ(prog.total(), chosen.size());
  std::vector<std::uint32_t> ranks;
  for (const auto v : chosen) ranks.push_back(prog.rank(v));
  std::sort(ranks.begin(), ranks.end());
  for (std::size_t i = 0; i < ranks.size(); ++i) EXPECT_EQ(ranks[i], i);
  // Unflagged nodes must stay unranked.
  EXPECT_EQ(prog.rank(0) != graph::kUnreached, flagged[0]);
}

TEST(PrefixAssign, AllFlagged) {
  const Graph g = graph::path_graph(12);
  const RootedTree t = tree_of(g, 11);
  PrefixAssignProgram prog(t, std::vector<bool>(12, true));
  Simulator sim(g, 1);
  sim.run(prog, 200);
  EXPECT_EQ(prog.total(), 12u);
  std::vector<bool> seen(12, false);
  for (graph::VertexId v = 0; v < 12; ++v) {
    const auto r = prog.rank(v);
    ASSERT_LT(r, 12u);
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

TEST(PrefixAssign, NoneFlagged) {
  const Graph g = graph::path_graph(6);
  const RootedTree t = tree_of(g, 0);
  PrefixAssignProgram prog(t, std::vector<bool>(6, false));
  Simulator sim(g, 1);
  const RunStats st = sim.run(prog, 100);
  EXPECT_TRUE(st.completed);
  EXPECT_EQ(prog.total(), 0u);
}

// --- Bellman-Ford ---------------------------------------------------------------------

class BellmanFordTest : public ::testing::TestWithParam<int> {};

TEST_P(BellmanFordTest, MatchesDijkstra) {
  Rng rng(200 + GetParam());
  const Graph g = graph::connected_gnm(60, 140, rng);
  const graph::EdgeWeights w = graph::random_weights(g, 20, rng);
  const graph::VertexId src = static_cast<graph::VertexId>((7 * GetParam()) % 60);
  BellmanFordProgram prog(g, w, src);
  Simulator sim(g, 1);
  const RunStats st = sim.run(prog, 10000);
  ASSERT_TRUE(st.completed);
  const auto want = sssp::dijkstra(g, w, src);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(prog.dist()[v], want.dist[v]) << "v=" << v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BellmanFordTest, ::testing::Values(0, 1, 2, 3, 4));

TEST(BellmanFord, RejectsNegativeWeights) {
  const Graph g = graph::path_graph(3);
  graph::EdgeWeights w{1, -2};
  EXPECT_THROW(BellmanFordProgram(g, w, 0), std::invalid_argument);
}

// --- MultiBfs -----------------------------------------------------------------------

TEST(MultiBfs, SingleInstanceMatchesPlainBfs) {
  Rng rng(8);
  const Graph g = graph::connected_gnm(50, 110, rng);
  std::vector<graph::EdgeId> all(g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) all[e] = e;
  std::vector<BfsInstanceSpec> specs(1);
  specs[0].root = 9;
  specs[0].edges = all;
  MultiBfsProgram prog(g, std::move(specs));
  Simulator sim(g, 1);
  const RunStats st = sim.run(prog, 5000);
  ASSERT_TRUE(st.completed);
  const graph::BfsResult want = graph::bfs(g, 9);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(prog.dist_of(0, v), want.dist[v]);
}

TEST(MultiBfs, RestrictedToSubNetwork) {
  const Graph g = graph::path_graph(10);
  // Instance sees only edges 0..4 (vertices 0..5).
  std::vector<BfsInstanceSpec> specs(1);
  specs[0].root = 0;
  specs[0].edges = {0, 1, 2, 3, 4};
  MultiBfsProgram prog(g, std::move(specs));
  Simulator sim(g, 1);
  sim.run(prog, 1000);
  EXPECT_EQ(prog.dist_of(0, 5), 5u);
  EXPECT_EQ(prog.dist_of(0, 6), graph::kUnreached);
}

TEST(MultiBfs, DepthCapRespected) {
  const Graph g = graph::path_graph(10);
  std::vector<graph::EdgeId> all(g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) all[e] = e;
  std::vector<BfsInstanceSpec> specs(1);
  specs[0].root = 0;
  specs[0].edges = all;
  specs[0].depth_cap = 3;
  MultiBfsProgram prog(g, std::move(specs));
  Simulator sim(g, 1);
  sim.run(prog, 1000);
  EXPECT_EQ(prog.dist_of(0, 3), 3u);
  EXPECT_EQ(prog.dist_of(0, 4), graph::kUnreached);
  EXPECT_EQ(prog.max_depth(0), 3u);
}

TEST(MultiBfs, StartDelayHonored) {
  const Graph g = graph::path_graph(6);
  std::vector<graph::EdgeId> all(g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) all[e] = e;
  std::vector<BfsInstanceSpec> specs(1);
  specs[0].root = 0;
  specs[0].edges = all;
  specs[0].start_round = 7;
  MultiBfsProgram prog(g, std::move(specs));
  Simulator sim(g, 1);
  const RunStats st = sim.run(prog, 1000);
  ASSERT_TRUE(st.completed);
  // 5 hops after a 7-round delay: last adoption at round >= 12.
  EXPECT_GE(prog.last_adoption_round(0), 12u);
  EXPECT_EQ(prog.dist_of(0, 5), 5u);
}

TEST(MultiBfs, DisjointInstancesRunInParallel) {
  // Two disjoint paths inside one graph: no interference.
  graph::GraphBuilder b(12);
  for (graph::VertexId v = 0; v + 1 < 6; ++v) b.add_edge(v, v + 1);
  for (graph::VertexId v = 6; v + 1 < 12; ++v) b.add_edge(v, v + 1);
  const Graph g = std::move(b).build();
  std::vector<BfsInstanceSpec> specs(2);
  specs[0].root = 0;
  specs[1].root = 6;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (g.edge(e).u < 6)
      specs[0].edges.push_back(e);
    else
      specs[1].edges.push_back(e);
  }
  MultiBfsProgram prog(g, std::move(specs));
  Simulator sim(g, 1);
  const RunStats st = sim.run(prog, 1000);
  ASSERT_TRUE(st.completed);
  EXPECT_EQ(prog.dist_of(0, 5), 5u);
  EXPECT_EQ(prog.dist_of(1, 11), 5u);
  EXPECT_LE(st.rounds, 10u);  // both finish in ~path length rounds
}

TEST(MultiBfs, SharedEdgeSerializesTraffic) {
  // K instances all rooted at vertex 0 of a single path: the first edge is
  // shared by all of them, so completion takes >= K rounds on it.
  const Graph g = graph::path_graph(4);
  std::vector<graph::EdgeId> all(g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) all[e] = e;
  const std::size_t K = 8;
  std::vector<BfsInstanceSpec> specs(K);
  for (auto& s : specs) {
    s.root = 0;
    s.edges = all;
  }
  MultiBfsProgram prog(g, std::move(specs));
  Simulator sim(g, 1);
  const RunStats st = sim.run(prog, 1000);
  ASSERT_TRUE(st.completed);
  for (std::size_t i = 0; i < K; ++i) EXPECT_EQ(prog.dist_of(i, 3), 3u);
  EXPECT_GE(st.rounds, K);                 // bandwidth-limited
  EXPECT_GE(st.max_edge_load, K);          // first edge carried all instances
}

TEST(MultiBfs, MembersIncludeRootAndEndpoints) {
  const Graph g = graph::path_graph(5);
  std::vector<BfsInstanceSpec> specs(1);
  specs[0].root = 4;
  specs[0].edges = {0};  // edge 0-1 only; root 4 is isolated in-instance
  MultiBfsProgram prog(g, std::move(specs));
  const auto& mem = prog.members(0);
  EXPECT_EQ(mem.size(), 3u);  // 0, 1 and the root 4
  Simulator sim(g, 1);
  const RunStats st = sim.run(prog, 100);
  EXPECT_TRUE(st.completed);
  EXPECT_EQ(prog.dist_of(0, 4), 0u);
  EXPECT_EQ(prog.dist_of(0, 0), graph::kUnreached);
}

}  // namespace
}  // namespace lcs::congest
