// 2-ECSS tests: connectivity predicate, approximation vs brute force on
// tiny instances, validity + ratio bounds across random families.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "tecss/tecss.hpp"
#include "util/rng.hpp"

namespace lcs::tecss {
namespace {

Graph two_connected_random(std::uint32_t n, std::uint32_t m, Rng& rng) {
  // Cycle backbone (2-edge-connected) plus random chords.
  graph::GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  for (std::uint32_t i = n; i < m; ++i) {
    const VertexId u = static_cast<VertexId>(rng.uniform(n));
    VertexId v = static_cast<VertexId>(rng.uniform(n));
    if (u == v) v = (v + 1) % n;
    b.add_edge(u, v);
  }
  return std::move(b).build();
}

TEST(TwoEdgeConnected, Predicate) {
  EXPECT_TRUE(is_two_edge_connected(graph::cycle_graph(5)));
  EXPECT_TRUE(is_two_edge_connected(graph::complete_graph(4)));
  EXPECT_FALSE(is_two_edge_connected(graph::path_graph(4)));          // bridges
  EXPECT_FALSE(is_two_edge_connected(graph::star_graph(5)));          // bridges
  EXPECT_FALSE(is_two_edge_connected(graph::Graph::from_edges(4, {{0, 1}, {2, 3}})));
  EXPECT_FALSE(is_two_edge_connected(graph::dumbbell_graph(4, 2)));   // path bridge
}

TEST(TwoEcss, CycleIsItsOwnOptimum) {
  const Graph g = graph::cycle_graph(8);
  const EdgeWeights w(8, 3);
  const TwoEcssResult r = two_ecss_approx(g, w);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.edges.size(), 8u);  // a cycle cannot drop any edge
  EXPECT_EQ(r.weight, 24);
}

TEST(TwoEcss, ResultIsAlwaysValidAndBounded) {
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = two_connected_random(30, 60 + trial, rng);
    const EdgeWeights w = graph::random_weights(g, 20, rng);
    const TwoEcssResult r = two_ecss_approx(g, w);
    EXPECT_TRUE(r.valid) << "trial " << trial;
    EXPECT_GE(r.weight, r.lower_bound);
    EXPECT_GE(r.ratio, 1.0);
    EXPECT_LE(r.ratio, 4.0) << "unexpectedly bad ratio, trial " << trial;
  }
}

TEST(TwoEcss, NearOptimalOnTinyInstances) {
  Rng rng(2);
  int total = 0;
  double worst = 1.0;
  for (int trial = 0; trial < 12; ++trial) {
    const Graph g = two_connected_random(7, 10 + trial % 3, rng);
    if (g.num_edges() > 22) continue;
    const EdgeWeights w = graph::random_weights(g, 9, rng);
    const TwoEcssResult opt = two_ecss_brute_force(g, w);
    const TwoEcssResult apx = two_ecss_approx(g, w);
    EXPECT_GE(apx.weight, opt.weight);
    worst = std::max(worst, double(apx.weight) / double(opt.weight));
    ++total;
  }
  ASSERT_GT(total, 5);
  EXPECT_LE(worst, 2.5);  // the greedy cover stays close on tiny instances
}

TEST(TwoEcss, LowerBoundBelowBruteForceOptimum) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = two_connected_random(6, 9, rng);
    if (g.num_edges() > 22) continue;
    const EdgeWeights w = graph::random_weights(g, 7, rng);
    const TwoEcssResult opt = two_ecss_brute_force(g, w);
    const TwoEcssResult apx = two_ecss_approx(g, w);
    EXPECT_LE(apx.lower_bound, opt.weight);
  }
}

TEST(TwoEcss, RejectsBridgedInput) {
  const Graph g = graph::dumbbell_graph(4, 2);
  EXPECT_THROW(two_ecss_approx(g, EdgeWeights(g.num_edges(), 1)),
               std::invalid_argument);
}

TEST(TwoEcss, CompleteGraphCheapSubgraph) {
  const Graph g = graph::complete_graph(8);
  Rng rng(4);
  const EdgeWeights w = graph::random_weights(g, 100, rng);
  const TwoEcssResult r = two_ecss_approx(g, w);
  EXPECT_TRUE(r.valid);
  // Should use far fewer edges than the full clique.
  EXPECT_LE(r.edges.size(), 2u * 8u);
}

TEST(TwoEcss, HeavyChordAvoided) {
  // Square with a very heavy diagonal: optimal 2-ECSS is the square itself.
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  b.add_edge(0, 2);
  const Graph g = std::move(b).build();
  // Sorted edge order: (0,1) (0,2) (0,3) (1,2) (2,3).
  EdgeWeights w{1, 100, 1, 1, 1};
  const TwoEcssResult r = two_ecss_approx(g, w);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.weight, 4);
  EXPECT_EQ(r.edges.size(), 4u);
}

TEST(TwoEcssBruteForce, GuardsSize) {
  const Graph g = graph::complete_graph(8);  // 28 edges > 22
  EXPECT_THROW(two_ecss_brute_force(g, EdgeWeights(g.num_edges(), 1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace lcs::tecss
