// Tests for graph generators and partition generators, with emphasis on the
// hard-instance family: exact diameter, valid path partition, expected shape.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "util/rng.hpp"

namespace lcs::graph {
namespace {

// --- deterministic families -------------------------------------------------

TEST(Generators, PathCycleCompleteStarSizes) {
  EXPECT_EQ(path_graph(7).num_edges(), 6u);
  EXPECT_EQ(cycle_graph(7).num_edges(), 7u);
  EXPECT_EQ(complete_graph(7).num_edges(), 21u);
  EXPECT_EQ(star_graph(7).num_edges(), 6u);
  EXPECT_EQ(grid_graph(3, 4).num_edges(), 17u);
}

TEST(Generators, DumbbellShape) {
  const Graph g = dumbbell_graph(4, 3);
  // 2 cliques of 4 + 2 path-interior vertices.
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter_exact(g), 5u);  // clique hop + 3-edge path + clique hop
}

TEST(Generators, DumbbellTouchingCliques) {
  const Graph g = dumbbell_graph(3, 0);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.num_vertices(), 6u);
}

// --- random families ----------------------------------------------------------

TEST(Generators, ErdosRenyiEdgeCountPlausible) {
  Rng rng(4);
  const Graph g = erdos_renyi(60, 0.2, rng);
  const double expected = 0.2 * 60 * 59 / 2.0;
  EXPECT_GT(g.num_edges(), expected * 0.6);
  EXPECT_LT(g.num_edges(), expected * 1.4);
}

TEST(Generators, ErdosRenyiExtremes) {
  Rng rng(5);
  EXPECT_EQ(erdos_renyi(20, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi(20, 1.0, rng).num_edges(), 190u);
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(6);
  for (int t = 0; t < 10; ++t) {
    const Graph g = random_tree(40, rng);
    EXPECT_EQ(g.num_edges(), 39u);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, ConnectedGnmExactEdgeCount) {
  Rng rng(7);
  for (const std::uint32_t m : {49u, 80u, 200u}) {
    const Graph g = connected_gnm(50, m, rng);
    EXPECT_EQ(g.num_edges(), m);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, ConnectedGnmRejectsInfeasible) {
  Rng rng(8);
  EXPECT_THROW(connected_gnm(10, 5, rng), std::invalid_argument);    // too few
  EXPECT_THROW(connected_gnm(10, 100, rng), std::invalid_argument);  // too many
}

TEST(Generators, RoadNetworkIsConnectedDeterministicAndSized) {
  for (const std::uint32_t n : {2u, 7u, 80u, 300u}) {
    Rng rng(n);
    const Graph g = road_network(n, rng);
    EXPECT_EQ(g.num_vertices(), n);
    EXPECT_TRUE(is_connected(g)) << "n=" << n;
    // Sparse like a road grid: average degree stays small.
    EXPECT_LE(g.num_edges(), 3u * n);
    Rng replay(n);
    const Graph again = road_network(n, replay);
    EXPECT_EQ(again.num_edges(), g.num_edges());
    for (VertexId v = 0; v < n; ++v)
      ASSERT_EQ(again.degree(v), g.degree(v)) << "n=" << n << " v=" << v;
  }
}

TEST(Generators, TransitNetworkIsConnectedDeterministicAndSized) {
  for (const std::uint32_t n : {2u, 11u, 70u, 240u}) {
    Rng rng(n ^ 5);
    const std::uint32_t lines = std::max(1u, n / 14);
    const Graph g = transit_network(n, lines, rng);
    EXPECT_EQ(g.num_vertices(), n);
    EXPECT_TRUE(is_connected(g)) << "n=" << n;
    Rng replay(n ^ 5);
    const Graph again = transit_network(n, lines, replay);
    EXPECT_EQ(again.num_edges(), g.num_edges());
    for (VertexId v = 0; v < n; ++v)
      ASSERT_EQ(again.degree(v), g.degree(v)) << "n=" << n << " v=" << v;
  }
}

TEST(Generators, LayeredRandomGraphDiameterExact) {
  Rng rng(9);
  for (const std::uint32_t d : {3u, 4u, 5u, 6u, 8u}) {
    const Graph g = layered_random_graph(300, d, 1.5, rng);
    EXPECT_TRUE(is_connected(g));
    EXPECT_EQ(diameter_exact(g), d) << "D=" << d;
  }
}

TEST(Generators, LayeredRandomGraphSmall) {
  Rng rng(10);
  const Graph g = layered_random_graph(6, 5, 0.0, rng);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(diameter_exact(g), 5u);
}

// --- hard instances -----------------------------------------------------------

class HardInstanceTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HardInstanceTest, DiameterIsExactlyD) {
  const std::uint32_t d = GetParam();
  const HardInstance hi = hard_instance(900, d);
  EXPECT_TRUE(is_connected(hi.g));
  EXPECT_EQ(diameter_exact(hi.g), d);
  EXPECT_EQ(hi.diameter, d);
}

TEST_P(HardInstanceTest, PathPartitionIsValid) {
  const std::uint32_t d = GetParam();
  const HardInstance hi = hard_instance(900, d);
  EXPECT_EQ(validate_partition(hi.g, hi.paths), "");
  EXPECT_EQ(hi.paths.num_parts(), hi.num_paths);
  for (const auto& part : hi.paths.parts) EXPECT_EQ(part.size(), hi.path_length);
}

TEST_P(HardInstanceTest, PartsAreActualPaths) {
  const std::uint32_t d = GetParam();
  const HardInstance hi = hard_instance(600, d);
  for (const auto& part : hi.paths.parts) {
    // Consecutive part vertices adjacent; part induces exactly a path.
    for (std::size_t j = 0; j + 1 < part.size(); ++j) {
      bool adjacent = false;
      for (const HalfEdge he : hi.g.neighbors(part[j]))
        if (he.to == part[j + 1]) adjacent = true;
      EXPECT_TRUE(adjacent);
    }
  }
}

TEST_P(HardInstanceTest, SizeNearTarget) {
  const std::uint32_t d = GetParam();
  const HardInstance hi = hard_instance(2000, d);
  EXPECT_GT(hi.g.num_vertices(), 1000u);
  EXPECT_LT(hi.g.num_vertices(), 3000u);
}

INSTANTIATE_TEST_SUITE_P(Diameters, HardInstanceTest,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u, 8u));

TEST(HardInstance, PathLengthScalesLikeSqrtN) {
  const HardInstance a = hard_instance(400, 4);
  const HardInstance b = hard_instance(6400, 4);
  // sqrt scaling: 4x path length for 16x nodes.
  EXPECT_NEAR(static_cast<double>(b.path_length) / a.path_length, 4.0, 1.2);
}

TEST(HardInstance, RejectsTinyOrShallow) {
  EXPECT_THROW(hard_instance(10, 6), std::invalid_argument);
  EXPECT_THROW(hard_instance(1000, 2), std::invalid_argument);
}

// --- subdivision -----------------------------------------------------------------

TEST(Subdivide, DoublesDiameterOfPath) {
  const Graph g = path_graph(5);
  const Subdivision s = subdivide(g);
  EXPECT_EQ(s.g2.num_vertices(), g.num_vertices() + g.num_edges());
  EXPECT_EQ(s.g2.num_edges(), 2 * g.num_edges());
  EXPECT_EQ(diameter_exact(s.g2), 2 * diameter_exact(g));
}

TEST(Subdivide, HalfEdgeMappingConsistent) {
  Rng rng(11);
  const Graph g = connected_gnm(20, 40, rng);
  const Subdivision s = subdivide(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge orig = g.edge(e);
    const VertexId xe = s.dummy_of(e, g.num_vertices());
    const Edge ha = s.g2.edge(s.half_a[e]);
    const Edge hb = s.g2.edge(s.half_b[e]);
    // half_a joins u and x_e; half_b joins x_e and v.
    EXPECT_TRUE(ha.u == orig.u || ha.v == orig.u);
    EXPECT_TRUE(ha.u == xe || ha.v == xe);
    EXPECT_TRUE(hb.u == orig.v || hb.v == orig.v);
    EXPECT_TRUE(hb.u == xe || hb.v == xe);
    EXPECT_EQ(s.original[s.half_a[e]], e);
    EXPECT_EQ(s.original[s.half_b[e]], e);
  }
}

TEST(Subdivide, DummiesHaveDegreeTwo) {
  Rng rng(12);
  const Graph g = connected_gnm(15, 30, rng);
  const Subdivision s = subdivide(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_EQ(s.g2.degree(s.dummy_of(e, g.num_vertices())), 2u);
}

// --- partitions -------------------------------------------------------------------

TEST(Partition, AssignmentAndLeader) {
  Partition p;
  p.parts = {{3, 1}, {0, 2}};
  const auto a = p.assignment(5);
  EXPECT_EQ(a[1], 0);
  EXPECT_EQ(a[3], 0);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(a[2], 1);
  EXPECT_EQ(a[4], -1);
  EXPECT_EQ(p.leader(0), 3u);  // max id in part
  EXPECT_EQ(p.leader(1), 2u);
}

TEST(Partition, AssignmentRejectsOverlap) {
  Partition p;
  p.parts = {{0, 1}, {1, 2}};
  EXPECT_THROW(p.assignment(3), std::invalid_argument);
}

TEST(Partition, ValidationCatchesDisconnected) {
  const Graph g = path_graph(5);
  Partition p;
  p.parts = {{0, 4}};  // not connected inside the part
  EXPECT_NE(validate_partition(g, p), "");
}

TEST(Partition, ValidationCatchesDuplicates) {
  const Graph g = path_graph(5);
  Partition p;
  p.parts = {{0, 1}, {1, 2}};
  EXPECT_NE(validate_partition(g, p), "");
}

TEST(Partition, ValidationCatchesEmptyPart) {
  const Graph g = path_graph(3);
  Partition p;
  p.parts = {{}};
  EXPECT_NE(validate_partition(g, p), "");
}

TEST(Partition, ValidationAcceptsPartial) {
  const Graph g = path_graph(6);
  Partition p;
  p.parts = {{0, 1}, {3, 4}};  // vertex 2, 5 uncovered: fine
  EXPECT_EQ(validate_partition(g, p), "");
}

class BallPartitionTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BallPartitionTest, ValidAndCovering) {
  Rng rng(13 + GetParam());
  const Graph g = connected_gnm(120, 260, rng);
  const Partition p = ball_partition(g, GetParam(), rng);
  EXPECT_EQ(validate_partition(g, p), "");
  std::size_t covered = 0;
  for (const auto& part : p.parts) covered += part.size();
  EXPECT_EQ(covered, g.num_vertices());
  EXPECT_LE(p.num_parts(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(SeedCounts, BallPartitionTest,
                         ::testing::Values(1u, 2u, 5u, 17u, 60u));

class ForestPartitionTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ForestPartitionTest, ValidCoveringAndBounded) {
  Rng rng(17 + GetParam());
  const Graph g = connected_gnm(100, 180, rng);
  const Partition p = forest_partition(g, GetParam(), rng);
  EXPECT_EQ(validate_partition(g, p), "");
  std::size_t covered = 0;
  for (const auto& part : p.parts) {
    EXPECT_LE(part.size(), GetParam());
    covered += part.size();
  }
  EXPECT_EQ(covered, g.num_vertices());
}

INSTANTIATE_TEST_SUITE_P(Caps, ForestPartitionTest, ::testing::Values(1u, 4u, 16u, 100u));

TEST(Partition, SingletonAndComponent) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {2, 3}});
  const Partition s = singleton_partition(g);
  EXPECT_EQ(s.num_parts(), 5u);
  const Partition c = component_partition(g);
  EXPECT_EQ(c.num_parts(), 3u);
  EXPECT_EQ(validate_partition(g, c), "");
}

}  // namespace
}  // namespace lcs::graph
