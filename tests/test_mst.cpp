// MST tests: Kruskal against brute force, Boruvka-over-shortcuts against
// Kruskal across schemes, families and seeds, and round accounting sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/union_find.hpp"
#include "mst/mst.hpp"
#include "util/rng.hpp"

namespace lcs::mst {
namespace {

Weight brute_force_mst_weight(const Graph& g, const EdgeWeights& w) {
  // Enumerate all spanning trees? Too many; instead enumerate subsets of
  // size n-1 for tiny graphs.
  const std::uint32_t n = g.num_vertices();
  const std::uint32_t m = g.num_edges();
  LCS_REQUIRE(m <= 16, "brute force limited");
  Weight best = std::numeric_limits<Weight>::max();
  for (std::uint32_t mask = 0; mask < (1u << m); ++mask) {
    if (static_cast<std::uint32_t>(__builtin_popcount(mask)) != n - 1) continue;
    graph::UnionFind uf(n);
    Weight total = 0;
    for (EdgeId e = 0; e < m; ++e) {
      if (!(mask & (1u << e))) continue;
      const graph::Edge ed = g.edge(e);
      uf.unite(ed.u, ed.v);
      total += w[e];
    }
    if (uf.num_sets() == 1) best = std::min(best, total);
  }
  return best;
}

TEST(Kruskal, MatchesBruteForceOnTinyGraphs) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = graph::connected_gnm(7, 7 + trial % 9, rng);
    const EdgeWeights w = graph::random_weights(g, 12, rng);
    EXPECT_EQ(kruskal(g, w).weight, brute_force_mst_weight(g, w)) << "trial " << trial;
  }
}

TEST(Kruskal, TreeInputReturnsAllEdges) {
  Rng rng(2);
  const Graph g = graph::random_tree(30, rng);
  const EdgeWeights w = graph::random_weights(g, 10, rng);
  const MstResult r = kruskal(g, w);
  EXPECT_EQ(r.edges.size(), 29u);
  EXPECT_EQ(r.weight, graph::total_weight(w, r.edges));
}

TEST(Kruskal, SpanningForestOnDisconnected) {
  const Graph g = graph::Graph::from_edges(5, {{0, 1}, {1, 2}, {3, 4}});
  const EdgeWeights w{5, 3, 2};
  const MstResult r = kruskal(g, w);
  EXPECT_EQ(r.edges.size(), 3u);
  EXPECT_EQ(r.weight, 10);
}

TEST(Kruskal, ResultIsSpanningAcyclic) {
  Rng rng(3);
  const Graph g = graph::connected_gnm(80, 200, rng);
  const EdgeWeights w = graph::distinct_random_weights(g, rng);
  const MstResult r = kruskal(g, w);
  EXPECT_EQ(r.edges.size(), 79u);
  graph::UnionFind uf(80);
  for (const EdgeId e : r.edges) EXPECT_TRUE(uf.unite(g.edge(e).u, g.edge(e).v));
  EXPECT_EQ(uf.num_sets(), 1u);
}

// --- Boruvka over shortcuts -------------------------------------------------------

struct SchemeCase {
  ShortcutScheme scheme;
  const char* name;
};

class BoruvkaSchemeTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BoruvkaSchemeTest, WeightEqualsKruskal) {
  const auto [scheme_idx, seed] = GetParam();
  const ShortcutScheme scheme = static_cast<ShortcutScheme>(scheme_idx);
  Rng rng(100 + seed);
  const Graph g = graph::connected_gnm(90, 220, rng);
  const EdgeWeights w = graph::distinct_random_weights(g, rng);
  BoruvkaOptions opt;
  opt.scheme = scheme;
  opt.seed = seed;
  const BoruvkaResult res = boruvka_mst(g, w, opt);
  const MstResult want = kruskal(g, w);
  EXPECT_EQ(res.mst.weight, want.weight);
  // With distinct weights the MST is unique: edge sets must match exactly.
  EXPECT_EQ(res.mst.edges, want.edges);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, BoruvkaSchemeTest,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(1, 2, 3)));

TEST(Boruvka, HardInstanceAllSchemesAgree) {
  const auto hi = graph::hard_instance(350, 4);
  Rng rng(7);
  const EdgeWeights w = graph::distinct_random_weights(hi.g, rng);
  const MstResult want = kruskal(hi.g, w);
  for (const ShortcutScheme s : {ShortcutScheme::kKoganParter,
                                 ShortcutScheme::kGhaffariHaeupler,
                                 ShortcutScheme::kNone}) {
    BoruvkaOptions opt;
    opt.scheme = s;
    opt.diameter = 4;
    const BoruvkaResult res = boruvka_mst(hi.g, w, opt);
    EXPECT_EQ(res.mst.weight, want.weight);
  }
}

TEST(Boruvka, PhaseCountLogarithmic) {
  Rng rng(8);
  const Graph g = graph::connected_gnm(128, 400, rng);
  const EdgeWeights w = graph::distinct_random_weights(g, rng);
  BoruvkaOptions opt;
  opt.scheme = ShortcutScheme::kNone;
  const BoruvkaResult res = boruvka_mst(g, w, opt);
  EXPECT_LE(res.phases, 8u);  // ceil(log2(128)) = 7 plus slack
  EXPECT_GE(res.phases, 1u);
}

TEST(Boruvka, PhaseStatsAccounting) {
  Rng rng(9);
  const Graph g = graph::connected_gnm(60, 150, rng);
  const EdgeWeights w = graph::distinct_random_weights(g, rng);
  BoruvkaOptions opt;
  opt.scheme = ShortcutScheme::kKoganParter;
  opt.diameter = 4;
  const BoruvkaResult res = boruvka_mst(g, w, opt);
  ASSERT_EQ(res.phase_stats.size(), res.phases);
  std::uint64_t sum = 0;
  for (const PhaseStats& ps : res.phase_stats) {
    EXPECT_GT(ps.fragments, 0u);
    EXPECT_EQ(ps.rounds_charged,
              ps.bfs_rounds + ps.up_rounds + ps.down_rounds + 1);
    sum += ps.rounds_charged;
  }
  EXPECT_EQ(res.aggregation_rounds, sum);
  EXPECT_EQ(res.total_rounds(), res.aggregation_rounds + res.construction_rounds);
  // Fragment counts strictly decrease.
  for (std::size_t i = 1; i < res.phase_stats.size(); ++i)
    EXPECT_LT(res.phase_stats[i].fragments, res.phase_stats[i - 1].fragments);
}

TEST(Boruvka, NoConstructionChargeForTrivialScheme) {
  Rng rng(10);
  const Graph g = graph::connected_gnm(50, 120, rng);
  const EdgeWeights w = graph::distinct_random_weights(g, rng);
  BoruvkaOptions opt;
  opt.scheme = ShortcutScheme::kNone;
  const BoruvkaResult res = boruvka_mst(g, w, opt);
  EXPECT_EQ(res.construction_rounds, 0u);
}

TEST(Boruvka, DisconnectedRejected) {
  const Graph g = graph::Graph::from_edges(4, {{0, 1}, {2, 3}});
  const EdgeWeights w{1, 2};
  EXPECT_THROW(boruvka_mst(g, w, {}), std::invalid_argument);
}

TEST(Boruvka, DuplicateWeightsStillValidTree) {
  Rng rng(11);
  const Graph g = graph::connected_gnm(70, 180, rng);
  EdgeWeights w(g.num_edges(), 5);  // all equal: tie-break by edge id
  const BoruvkaResult res = boruvka_mst(g, w, {});
  EXPECT_EQ(res.mst.edges.size(), 69u);
  EXPECT_EQ(res.mst.weight, 69 * 5);
  graph::UnionFind uf(70);
  for (const EdgeId e : res.mst.edges) EXPECT_TRUE(uf.unite(g.edge(e).u, g.edge(e).v));
}

TEST(Boruvka, CompleteGraphFastPhases) {
  const Graph g = graph::complete_graph(32);
  Rng rng(12);
  const EdgeWeights w = graph::distinct_random_weights(g, rng);
  BoruvkaOptions opt;
  opt.scheme = ShortcutScheme::kNone;
  const BoruvkaResult res = boruvka_mst(g, w, opt);
  EXPECT_EQ(res.mst.weight, kruskal(g, w).weight);
  EXPECT_LE(res.phases, 5u);
}

}  // namespace
}  // namespace lcs::mst
