// The determinism fleet: every parallelized entry point must produce
// byte-identical results at 1, 2 and 8 threads, across ~50 randomized
// (generator, partition, seed) combinations, and the simulator's parallel
// mode must match sequential execution exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "congest/multibfs.hpp"
#include "congest/multitree.hpp"
#include "congest/programs.hpp"
#include "congest/simulator.hpp"
#include "core/kp.hpp"
#include "core/shortcut.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "graph/weighted.hpp"
#include "mincut/mincut.hpp"
#include "mst/mst.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace lcs {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

struct Instance {
  std::string name;
  graph::Graph g;
  graph::Partition parts;
};

/// ~50 (generator, partition, seed) combos, all test-scale.
std::vector<Instance> instances() {
  std::vector<Instance> out;
  const auto add = [&](std::string name, graph::Graph g, graph::Partition parts) {
    out.push_back({std::move(name), std::move(g), std::move(parts)});
  };

  for (const std::uint64_t seed : {11ull, 23ull}) {
    for (const std::uint32_t n : {60u, 140u, 260u}) {
      Rng rng(seed);
      const graph::Graph g = graph::connected_gnm(n, 2 * n, rng);
      add("gnm_ball/" + std::to_string(n) + "/" + std::to_string(seed), g,
          graph::ball_partition(g, n / 20, rng));
      add("gnm_forest/" + std::to_string(n) + "/" + std::to_string(seed), g,
          graph::forest_partition(g, 12, rng));
      add("gnm_singleton/" + std::to_string(n) + "/" + std::to_string(seed), g,
          graph::singleton_partition(g));
    }
    for (const std::uint32_t n : {80u, 200u}) {
      Rng rng(seed + 1);
      const graph::Graph t = graph::random_tree(n, rng);
      add("tree_forest/" + std::to_string(n) + "/" + std::to_string(seed), t,
          graph::forest_partition(t, 9, rng));
      const graph::Graph pa = graph::preferential_attachment(n, 3, rng);
      add("pa_ball/" + std::to_string(n) + "/" + std::to_string(seed), pa,
          graph::ball_partition(pa, 5, rng));
      const graph::Graph lay = graph::layered_random_graph(n, 6, 1.5, rng);
      add("layered_ball/" + std::to_string(n) + "/" + std::to_string(seed), lay,
          graph::ball_partition(lay, 4, rng));
    }
  }
  for (const std::uint32_t n : {150u, 300u, 600u}) {
    for (const std::uint32_t d : {4u, 5u, 6u}) {
      graph::HardInstance hi = graph::hard_instance(n, d);
      add("hard/" + std::to_string(n) + "/D" + std::to_string(d), std::move(hi.g),
          std::move(hi.paths));
    }
  }
  {
    Rng rng(7);
    const graph::Graph grid = graph::grid_graph(12, 14);
    add("grid_forest", grid, graph::forest_partition(grid, 10, rng));
    const graph::Graph cyc = graph::cycle_graph(64);
    add("cycle_ball", cyc, graph::ball_partition(cyc, 4, rng));
    const graph::Graph path = graph::path_graph(40);
    add("path_component", path, graph::component_partition(path));
  }
  return out;
}

void expect_part_equal(const core::PartDilation& a, const core::PartDilation& b,
                       const std::string& ctx) {
  EXPECT_EQ(a.covered, b.covered) << ctx;
  EXPECT_EQ(a.cover_radius, b.cover_radius) << ctx;
  EXPECT_EQ(a.diameter_lb, b.diameter_lb) << ctx;
  EXPECT_EQ(a.diameter_ub, b.diameter_ub) << ctx;
  EXPECT_EQ(a.exact, b.exact) << ctx;
}

void expect_report_equal(const core::QualityReport& a, const core::QualityReport& b,
                         const std::string& ctx) {
  EXPECT_EQ(a.congestion, b.congestion) << ctx;
  EXPECT_EQ(a.dilation_lb, b.dilation_lb) << ctx;
  EXPECT_EQ(a.dilation_ub, b.dilation_ub) << ctx;
  EXPECT_EQ(a.max_cover_radius, b.max_cover_radius) << ctx;
  EXPECT_EQ(a.all_covered, b.all_covered) << ctx;
  ASSERT_EQ(a.parts.size(), b.parts.size()) << ctx;
  for (std::size_t i = 0; i < a.parts.size(); ++i) {
    expect_part_equal(a.parts[i], b.parts[i], ctx + " part " + std::to_string(i));
  }
}

/// Runs `compute` at every thread count and asserts `check(reference, run)`.
template <typename T>
void across_thread_counts(const std::function<T()>& compute,
                          const std::function<void(const T&, const T&, unsigned)>& check) {
  const unsigned previous = thread_override();
  set_num_threads(kThreadCounts[0]);
  const T reference = compute();
  for (const unsigned t : kThreadCounts) {
    set_num_threads(t);
    const T run = compute();
    check(reference, run, t);
  }
  set_num_threads(previous);
}

TEST(ParallelDeterminism, MeasureQualityBitIdentical) {
  for (const Instance& inst : instances()) {
    // A KP shortcut set exercises both stray-edge and step-1-only parts.
    core::KpOptions opt;
    opt.seed = 97;
    const core::ShortcutSet sc = core::build_kp_shortcuts(inst.g, inst.parts, opt).shortcuts;
    across_thread_counts<core::QualityReport>(
        [&] { return core::measure_quality(inst.g, inst.parts, sc); },
        [&](const core::QualityReport& ref, const core::QualityReport& got, unsigned t) {
          expect_report_equal(ref, got, inst.name + " @" + std::to_string(t) + "t");
        });
  }
}

TEST(ParallelDeterminism, EdgeCongestionBitIdentical) {
  for (const Instance& inst : instances()) {
    core::KpOptions opt;
    opt.seed = 131;
    const core::ShortcutSet sc = core::build_kp_shortcuts(inst.g, inst.parts, opt).shortcuts;
    across_thread_counts<std::vector<std::uint32_t>>(
        [&] { return core::edge_congestion(inst.g, inst.parts, sc); },
        [&](const std::vector<std::uint32_t>& ref, const std::vector<std::uint32_t>& got,
            unsigned t) {
          EXPECT_EQ(ref, got) << inst.name << " @" << t << "t";
        });
  }
}

TEST(ParallelDeterminism, KpBuildBitIdentical) {
  for (const Instance& inst : instances()) {
    core::KpOptions opt;
    opt.seed = 53;
    across_thread_counts<core::KpBuildResult>(
        [&] { return core::build_kp_shortcuts(inst.g, inst.parts, opt); },
        [&](const core::KpBuildResult& ref, const core::KpBuildResult& got, unsigned t) {
          const std::string ctx = inst.name + " @" + std::to_string(t) + "t";
          EXPECT_EQ(ref.shortcuts.h, got.shortcuts.h) << ctx;
          EXPECT_EQ(ref.is_large, got.is_large) << ctx;
          EXPECT_EQ(ref.num_large, got.num_large) << ctx;
        });
  }
}

TEST(ParallelDeterminism, KpStreamedQualityBitIdentical) {
  // The streamed measurement must match itself across thread counts AND the
  // materialized build + measure_quality pipeline.
  for (const Instance& inst : instances()) {
    core::KpOptions opt;
    opt.seed = 71;
    across_thread_counts<core::KpStreamReport>(
        [&] { return core::measure_kp_quality(inst.g, inst.parts, opt); },
        [&](const core::KpStreamReport& ref, const core::KpStreamReport& got, unsigned t) {
          const std::string ctx = inst.name + " @" + std::to_string(t) + "t";
          EXPECT_EQ(ref.total_shortcut_edges, got.total_shortcut_edges) << ctx;
          expect_report_equal(ref.quality, got.quality, ctx);
        });
    set_num_threads(8);
    const core::KpStreamReport streamed = core::measure_kp_quality(inst.g, inst.parts, opt);
    const core::KpBuildResult built = core::build_kp_shortcuts(inst.g, inst.parts, opt);
    const core::QualityReport direct = core::measure_quality(inst.g, inst.parts, built.shortcuts);
    expect_report_equal(streamed.quality, direct, inst.name + " streamed-vs-direct");
    set_num_threads(0);
  }
}

TEST(ParallelDeterminism, OddDiameterBuildBitIdentical) {
  for (const std::uint32_t n : {200u, 400u}) {
    graph::HardInstance hi = graph::hard_instance(n, 5);
    core::KpOptions opt;
    opt.seed = 41;
    opt.diameter = 5;
    across_thread_counts<core::KpBuildResult>(
        [&] { return core::build_kp_shortcuts_odd(hi.g, hi.paths, opt); },
        [&](const core::KpBuildResult& ref, const core::KpBuildResult& got, unsigned t) {
          EXPECT_EQ(ref.shortcuts.h, got.shortcuts.h) << "odd n=" << n << " @" << t << "t";
        });
  }
}

TEST(ParallelDeterminism, SimulatorParallelMatchesSequential) {
  for (const Instance& inst : instances()) {
    if (inst.g.num_vertices() == 0) continue;
    // Sequential reference run.
    congest::Simulator seq_sim(inst.g);
    congest::BfsProgram seq_bfs(inst.g.num_vertices(), 0);
    const congest::RunStats seq = seq_sim.run(seq_bfs, inst.g.num_vertices() + 2);
    for (const unsigned t : kThreadCounts) {
      set_num_threads(t);
      congest::Simulator sim(inst.g);
      sim.set_parallel(true);
      congest::BfsProgram bfs(inst.g.num_vertices(), 0);
      const congest::RunStats par = sim.run(bfs, inst.g.num_vertices() + 2);
      const std::string ctx = inst.name + " @" + std::to_string(t) + "t";
      EXPECT_EQ(seq.rounds, par.rounds) << ctx;
      EXPECT_EQ(seq.messages, par.messages) << ctx;
      EXPECT_EQ(seq.max_edge_load, par.max_edge_load) << ctx;
      EXPECT_EQ(seq.completed, par.completed) << ctx;
      EXPECT_EQ(seq_bfs.dist(), bfs.dist()) << ctx;
      EXPECT_EQ(seq_bfs.parent(), bfs.parent()) << ctx;
    }
    set_num_threads(0);
  }
}

TEST(ParallelDeterminism, BellmanFordParallelMatchesSequential) {
  Rng rng(5);
  // 777 nodes: the node range chunks to non-word-aligned boundaries at every
  // thread count, so a per-node flag packed into shared words (the
  // vector<bool> hazard simulator.hpp warns about) would surface under TSan.
  const graph::Graph g = graph::connected_gnm(777, 2000, rng);
  graph::EdgeWeights w(g.num_edges());
  for (auto& x : w) x = static_cast<graph::Weight>(1 + rng.uniform(50));
  congest::Simulator seq_sim(g);
  congest::BellmanFordProgram seq_bf(g, w, 0);
  const congest::RunStats seq = seq_sim.run(seq_bf, 200);
  for (const unsigned t : kThreadCounts) {
    set_num_threads(t);
    congest::Simulator sim(g);
    sim.set_parallel(true);
    congest::BellmanFordProgram bf(g, w, 0);
    const congest::RunStats par = sim.run(bf, 200);
    EXPECT_EQ(seq.rounds, par.rounds) << t;
    EXPECT_EQ(seq.messages, par.messages) << t;
    EXPECT_EQ(seq_bf.dist(), bf.dist()) << t;
  }
  set_num_threads(0);
}

// --- PR 3: referee & application layer ------------------------------------

/// Small weighted instances for the mincut/MST referees (Stoer–Wagner is
/// O(n^3), so these stay test-scale).
struct WeightedInstance {
  std::string name;
  graph::Graph g;
  graph::EdgeWeights w;
};

std::vector<WeightedInstance> weighted_instances() {
  std::vector<WeightedInstance> out;
  for (const std::uint64_t seed : {3ull, 17ull}) {
    Rng rng(seed);
    for (const std::uint32_t n : {24u, 60u, 120u}) {
      graph::Graph g = graph::connected_gnm(n, 3 * n, rng);
      graph::EdgeWeights w = graph::random_weights(g, 12, rng);
      out.push_back({"gnm/" + std::to_string(n) + "/" + std::to_string(seed), std::move(g),
                     std::move(w)});
    }
  }
  {
    const graph::Graph bell = graph::dumbbell_graph(8, 5);
    out.push_back({"dumbbell", bell, graph::EdgeWeights(bell.num_edges(), 1)});
    const graph::Graph grid = graph::grid_graph(9, 11);
    Rng rng(5);
    out.push_back({"grid", grid, graph::random_weights(grid, 7, rng)});
  }
  return out;
}

TEST(ParallelDeterminism, StoerWagnerBitIdentical) {
  for (const WeightedInstance& inst : weighted_instances()) {
    across_thread_counts<mincut::CutResult>(
        [&] { return mincut::stoer_wagner(inst.g, inst.w); },
        [&](const mincut::CutResult& ref, const mincut::CutResult& got, unsigned t) {
          const std::string ctx = inst.name + " @" + std::to_string(t) + "t";
          EXPECT_EQ(ref.value, got.value) << ctx;
          EXPECT_EQ(ref.side, got.side) << ctx;
        });
  }
}

TEST(ParallelDeterminism, KargerTrialsBitIdentical) {
  for (const WeightedInstance& inst : weighted_instances()) {
    // A fresh same-seeded generator per run: the trial family is derived
    // from one draw, so identical seeds must give identical cuts at any
    // thread count.
    across_thread_counts<mincut::CutResult>(
        [&] {
          Rng krng(911);
          return mincut::karger_mincut(inst.g, inst.w, 32, krng);
        },
        [&](const mincut::CutResult& ref, const mincut::CutResult& got, unsigned t) {
          const std::string ctx = inst.name + " @" + std::to_string(t) + "t";
          EXPECT_EQ(ref.value, got.value) << ctx;
          EXPECT_EQ(ref.side, got.side) << ctx;
          EXPECT_EQ(mincut::cut_value(inst.g, inst.w, got.side), got.value) << ctx;
        });
  }
}

TEST(ParallelDeterminism, TreePackingBitIdentical) {
  for (const WeightedInstance& inst : weighted_instances()) {
    across_thread_counts<mincut::TreePackingResult>(
        [&] { return mincut::tree_packing_mincut(inst.g, inst.w); },
        [&](const mincut::TreePackingResult& ref, const mincut::TreePackingResult& got,
            unsigned t) {
          const std::string ctx = inst.name + " @" + std::to_string(t) + "t";
          EXPECT_EQ(ref.cut.value, got.cut.value) << ctx;
          EXPECT_EQ(ref.cut.side, got.cut.side) << ctx;
          EXPECT_EQ(ref.best_tree, got.best_tree) << ctx;
        });
  }
}

TEST(ParallelDeterminism, KruskalBitIdentical) {
  for (const WeightedInstance& inst : weighted_instances()) {
    across_thread_counts<mst::MstResult>(
        [&] { return mst::kruskal(inst.g, inst.w); },
        [&](const mst::MstResult& ref, const mst::MstResult& got, unsigned t) {
          const std::string ctx = inst.name + " @" + std::to_string(t) + "t";
          EXPECT_EQ(ref.edges, got.edges) << ctx;
          EXPECT_EQ(ref.weight, got.weight) << ctx;
        });
  }
}

TEST(ParallelDeterminism, BoruvkaBitIdentical) {
  // Boruvka exercises the whole pipeline at once: parallel MWOE scan,
  // parallel spec/tspec setup, the multi-BFS/multi-tree constructors and
  // the simulator's parallel delivery.  Round/message counts are part of
  // the result: scheduling must not leak into the simulation.
  for (const WeightedInstance& inst : weighted_instances()) {
    if (inst.g.num_vertices() > 80) continue;  // keep the simulated runs fast
    mst::BoruvkaOptions opt;
    opt.seed = 77;
    across_thread_counts<mst::BoruvkaResult>(
        [&] { return mst::boruvka_mst(inst.g, inst.w, opt); },
        [&](const mst::BoruvkaResult& ref, const mst::BoruvkaResult& got, unsigned t) {
          const std::string ctx = inst.name + " @" + std::to_string(t) + "t";
          EXPECT_EQ(ref.mst.edges, got.mst.edges) << ctx;
          EXPECT_EQ(ref.mst.weight, got.mst.weight) << ctx;
          EXPECT_EQ(ref.phases, got.phases) << ctx;
          EXPECT_EQ(ref.aggregation_rounds, got.aggregation_rounds) << ctx;
          EXPECT_EQ(ref.construction_rounds, got.construction_rounds) << ctx;
          EXPECT_EQ(ref.messages, got.messages) << ctx;
        });
  }
}

/// Per-part BFS instances over the induced part edges (empty shortcut set).
std::vector<congest::BfsInstanceSpec> part_bfs_specs(const graph::Graph& g,
                                                     const graph::Partition& parts) {
  std::vector<congest::BfsInstanceSpec> specs;
  for (std::size_t i = 0; i < parts.parts.size(); ++i) {
    congest::BfsInstanceSpec spec;
    spec.root = parts.leader(i);
    spec.edges = core::induced_part_edges(g, parts.parts[i]);
    spec.start_round = static_cast<std::uint32_t>(i % 3);
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(ParallelDeterminism, MultiBfsMultiTreeBitIdentical) {
  Rng rng(31);
  const graph::Graph g = graph::connected_gnm(140, 320, rng);
  const graph::Partition parts = graph::ball_partition(g, 6, rng);

  struct Outcome {
    congest::RunStats bfs_stats;
    std::vector<std::uint32_t> dists;
    std::vector<graph::VertexId> parents;
    std::vector<std::uint64_t> up_results;
    std::vector<std::uint64_t> down_values;
  };
  across_thread_counts<Outcome>(
      [&] {
        Outcome out;
        congest::MultiBfsProgram prog(g, part_bfs_specs(g, parts));
        out.bfs_stats = congest::run_multi_bfs(g, prog, 8 * g.num_vertices() + 64).stats;
        std::vector<congest::TreeInstanceSpec> tspecs;
        for (std::size_t i = 0; i < prog.num_instances(); ++i) {
          for (const graph::VertexId v : prog.members(i)) {
            out.dists.push_back(prog.dist_of(i, v));
            out.parents.push_back(prog.parent_of(i, v));
          }
          congest::TreeInstanceSpec spec = congest::tree_spec_from_multibfs(prog, i);
          for (std::size_t k = 0; k < spec.members.size(); ++k)
            spec.value[k] = 1000ull * i + spec.members[k];
          tspecs.push_back(std::move(spec));
        }
        congest::MultiConvergecastProgram up(
            g, tspecs, [](std::uint64_t a, std::uint64_t b) { return std::min(a, b); });
        congest::Simulator up_sim(g, 1);
        up_sim.set_parallel_delivery(true);
        up_sim.run(up, 8 * g.num_vertices() + 64);
        std::vector<std::uint64_t> decisions;
        for (std::size_t i = 0; i < tspecs.size(); ++i) {
          EXPECT_TRUE(up.complete(i));
          decisions.push_back(up.result(i));
        }
        out.up_results = decisions;
        congest::MultiBroadcastProgram down(g, tspecs, decisions);
        congest::Simulator down_sim(g, 1);
        down_sim.set_parallel_delivery(true);
        down_sim.run(down, 8 * g.num_vertices() + 64);
        for (std::size_t i = 0; i < tspecs.size(); ++i)
          for (const graph::VertexId v : tspecs[i].members)
            out.down_values.push_back(down.value_at(i, v));
        return out;
      },
      [&](const Outcome& ref, const Outcome& got, unsigned t) {
        const std::string ctx = "multi @" + std::to_string(t) + "t";
        EXPECT_EQ(ref.bfs_stats.rounds, got.bfs_stats.rounds) << ctx;
        EXPECT_EQ(ref.bfs_stats.messages, got.bfs_stats.messages) << ctx;
        EXPECT_EQ(ref.bfs_stats.max_edge_load, got.bfs_stats.max_edge_load) << ctx;
        EXPECT_EQ(ref.dists, got.dists) << ctx;
        EXPECT_EQ(ref.parents, got.parents) << ctx;
        EXPECT_EQ(ref.up_results, got.up_results) << ctx;
        EXPECT_EQ(ref.down_values, got.down_values) << ctx;
      });
}

TEST(ParallelDeterminism, ParallelDeliveryMatchesSequential) {
  // Delivery-only parallelism must reproduce the sequential edge walk for a
  // program whose node turns stay sequential.
  Rng rng(9);
  const graph::Graph g = graph::connected_gnm(301, 900, rng);
  graph::EdgeWeights w(g.num_edges());
  for (auto& x : w) x = static_cast<graph::Weight>(1 + rng.uniform(40));
  congest::Simulator seq_sim(g);
  congest::BellmanFordProgram seq_bf(g, w, 0);
  const congest::RunStats seq = seq_sim.run(seq_bf, 200);
  for (const unsigned t : kThreadCounts) {
    set_num_threads(t);
    congest::Simulator sim(g);
    sim.set_parallel_delivery(true);
    congest::BellmanFordProgram bf(g, w, 0);
    const congest::RunStats par = sim.run(bf, 200);
    EXPECT_EQ(seq.rounds, par.rounds) << t;
    EXPECT_EQ(seq.messages, par.messages) << t;
    EXPECT_EQ(seq.max_edge_load, par.max_edge_load) << t;
    EXPECT_EQ(seq_bf.dist(), bf.dist()) << t;
  }
  set_num_threads(0);
}

TEST(ParallelDeterminism, ExactDiameterBitIdentical) {
  std::vector<std::pair<std::string, graph::Graph>> graphs;
  {
    Rng rng(13);
    graphs.emplace_back("gnm260", graph::connected_gnm(260, 700, rng));
    graphs.emplace_back("grid", graph::grid_graph(14, 17));
    graphs.emplace_back("hard", graph::hard_instance(300, 5).g);
    graphs.emplace_back("path", graph::path_graph(120));
  }
  for (const auto& [name, g] : graphs) {
    across_thread_counts<std::uint32_t>(
        [&, &g = g] { return graph::diameter_exact(g); },
        [&, &name = name](const std::uint32_t& ref, const std::uint32_t& got, unsigned t) {
          EXPECT_EQ(ref, got) << name << " @" << t << "t";
        });
  }
}

TEST(ParallelDeterminism, ParallelSortMatchesStableSort) {
  // Duplicate-heavy keys compared only by first: stability is observable,
  // so this pins parallel_sort to std::stable_sort at every thread count.
  Rng rng(21);
  for (const std::size_t count : {100ull, 5000ull, 50000ull}) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> input(count);
    for (std::size_t i = 0; i < count; ++i)
      input[i] = {static_cast<std::uint32_t>(rng.uniform(17)),
                  static_cast<std::uint32_t>(i)};
    const auto cmp = [](const auto& a, const auto& b) { return a.first < b.first; };
    auto expected = input;
    std::stable_sort(expected.begin(), expected.end(), cmp);
    for (const unsigned t : kThreadCounts) {
      set_num_threads(t);
      auto got = input;
      parallel_sort(got.begin(), got.end(), cmp);
      EXPECT_EQ(expected, got) << count << " @" << t << "t";
    }
    set_num_threads(0);
  }
}

TEST(ParallelDeterminism, RngSplitIsCounterBased) {
  Rng base(12345);
  // Draining the parent does not change split streams (unlike fork).
  Rng drained(12345);
  for (int i = 0; i < 100; ++i) (void)drained();
  for (const std::uint64_t stream : {0ull, 1ull, 2ull, 1ull << 40}) {
    Rng a = base.split(stream);
    Rng b = drained.split(stream);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b()) << stream;
  }
  // Distinct streams diverge.
  Rng s0 = base.split(0);
  Rng s1 = base.split(1);
  bool differs = false;
  for (int i = 0; i < 16; ++i) differs = differs || (s0() != s1());
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace lcs
