// The determinism fleet: every parallelized entry point must produce
// byte-identical results at 1, 2 and 8 threads, across ~50 randomized
// (generator, partition, seed) combinations, and the simulator's parallel
// mode must match sequential execution exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "congest/programs.hpp"
#include "congest/simulator.hpp"
#include "core/kp.hpp"
#include "core/shortcut.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace lcs {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

struct Instance {
  std::string name;
  graph::Graph g;
  graph::Partition parts;
};

/// ~50 (generator, partition, seed) combos, all test-scale.
std::vector<Instance> instances() {
  std::vector<Instance> out;
  const auto add = [&](std::string name, graph::Graph g, graph::Partition parts) {
    out.push_back({std::move(name), std::move(g), std::move(parts)});
  };

  for (const std::uint64_t seed : {11ull, 23ull}) {
    for (const std::uint32_t n : {60u, 140u, 260u}) {
      Rng rng(seed);
      const graph::Graph g = graph::connected_gnm(n, 2 * n, rng);
      add("gnm_ball/" + std::to_string(n) + "/" + std::to_string(seed), g,
          graph::ball_partition(g, n / 20, rng));
      add("gnm_forest/" + std::to_string(n) + "/" + std::to_string(seed), g,
          graph::forest_partition(g, 12, rng));
      add("gnm_singleton/" + std::to_string(n) + "/" + std::to_string(seed), g,
          graph::singleton_partition(g));
    }
    for (const std::uint32_t n : {80u, 200u}) {
      Rng rng(seed + 1);
      const graph::Graph t = graph::random_tree(n, rng);
      add("tree_forest/" + std::to_string(n) + "/" + std::to_string(seed), t,
          graph::forest_partition(t, 9, rng));
      const graph::Graph pa = graph::preferential_attachment(n, 3, rng);
      add("pa_ball/" + std::to_string(n) + "/" + std::to_string(seed), pa,
          graph::ball_partition(pa, 5, rng));
      const graph::Graph lay = graph::layered_random_graph(n, 6, 1.5, rng);
      add("layered_ball/" + std::to_string(n) + "/" + std::to_string(seed), lay,
          graph::ball_partition(lay, 4, rng));
    }
  }
  for (const std::uint32_t n : {150u, 300u, 600u}) {
    for (const std::uint32_t d : {4u, 5u, 6u}) {
      graph::HardInstance hi = graph::hard_instance(n, d);
      add("hard/" + std::to_string(n) + "/D" + std::to_string(d), std::move(hi.g),
          std::move(hi.paths));
    }
  }
  {
    Rng rng(7);
    const graph::Graph grid = graph::grid_graph(12, 14);
    add("grid_forest", grid, graph::forest_partition(grid, 10, rng));
    const graph::Graph cyc = graph::cycle_graph(64);
    add("cycle_ball", cyc, graph::ball_partition(cyc, 4, rng));
    const graph::Graph path = graph::path_graph(40);
    add("path_component", path, graph::component_partition(path));
  }
  return out;
}

void expect_part_equal(const core::PartDilation& a, const core::PartDilation& b,
                       const std::string& ctx) {
  EXPECT_EQ(a.covered, b.covered) << ctx;
  EXPECT_EQ(a.cover_radius, b.cover_radius) << ctx;
  EXPECT_EQ(a.diameter_lb, b.diameter_lb) << ctx;
  EXPECT_EQ(a.diameter_ub, b.diameter_ub) << ctx;
  EXPECT_EQ(a.exact, b.exact) << ctx;
}

void expect_report_equal(const core::QualityReport& a, const core::QualityReport& b,
                         const std::string& ctx) {
  EXPECT_EQ(a.congestion, b.congestion) << ctx;
  EXPECT_EQ(a.dilation_lb, b.dilation_lb) << ctx;
  EXPECT_EQ(a.dilation_ub, b.dilation_ub) << ctx;
  EXPECT_EQ(a.max_cover_radius, b.max_cover_radius) << ctx;
  EXPECT_EQ(a.all_covered, b.all_covered) << ctx;
  ASSERT_EQ(a.parts.size(), b.parts.size()) << ctx;
  for (std::size_t i = 0; i < a.parts.size(); ++i) {
    expect_part_equal(a.parts[i], b.parts[i], ctx + " part " + std::to_string(i));
  }
}

/// Runs `compute` at every thread count and asserts `check(reference, run)`.
template <typename T>
void across_thread_counts(const std::function<T()>& compute,
                          const std::function<void(const T&, const T&, unsigned)>& check) {
  const unsigned previous = thread_override();
  set_num_threads(kThreadCounts[0]);
  const T reference = compute();
  for (const unsigned t : kThreadCounts) {
    set_num_threads(t);
    const T run = compute();
    check(reference, run, t);
  }
  set_num_threads(previous);
}

TEST(ParallelDeterminism, MeasureQualityBitIdentical) {
  for (const Instance& inst : instances()) {
    // A KP shortcut set exercises both stray-edge and step-1-only parts.
    core::KpOptions opt;
    opt.seed = 97;
    const core::ShortcutSet sc = core::build_kp_shortcuts(inst.g, inst.parts, opt).shortcuts;
    across_thread_counts<core::QualityReport>(
        [&] { return core::measure_quality(inst.g, inst.parts, sc); },
        [&](const core::QualityReport& ref, const core::QualityReport& got, unsigned t) {
          expect_report_equal(ref, got, inst.name + " @" + std::to_string(t) + "t");
        });
  }
}

TEST(ParallelDeterminism, EdgeCongestionBitIdentical) {
  for (const Instance& inst : instances()) {
    core::KpOptions opt;
    opt.seed = 131;
    const core::ShortcutSet sc = core::build_kp_shortcuts(inst.g, inst.parts, opt).shortcuts;
    across_thread_counts<std::vector<std::uint32_t>>(
        [&] { return core::edge_congestion(inst.g, inst.parts, sc); },
        [&](const std::vector<std::uint32_t>& ref, const std::vector<std::uint32_t>& got,
            unsigned t) {
          EXPECT_EQ(ref, got) << inst.name << " @" << t << "t";
        });
  }
}

TEST(ParallelDeterminism, KpBuildBitIdentical) {
  for (const Instance& inst : instances()) {
    core::KpOptions opt;
    opt.seed = 53;
    across_thread_counts<core::KpBuildResult>(
        [&] { return core::build_kp_shortcuts(inst.g, inst.parts, opt); },
        [&](const core::KpBuildResult& ref, const core::KpBuildResult& got, unsigned t) {
          const std::string ctx = inst.name + " @" + std::to_string(t) + "t";
          EXPECT_EQ(ref.shortcuts.h, got.shortcuts.h) << ctx;
          EXPECT_EQ(ref.is_large, got.is_large) << ctx;
          EXPECT_EQ(ref.num_large, got.num_large) << ctx;
        });
  }
}

TEST(ParallelDeterminism, KpStreamedQualityBitIdentical) {
  // The streamed measurement must match itself across thread counts AND the
  // materialized build + measure_quality pipeline.
  for (const Instance& inst : instances()) {
    core::KpOptions opt;
    opt.seed = 71;
    across_thread_counts<core::KpStreamReport>(
        [&] { return core::measure_kp_quality(inst.g, inst.parts, opt); },
        [&](const core::KpStreamReport& ref, const core::KpStreamReport& got, unsigned t) {
          const std::string ctx = inst.name + " @" + std::to_string(t) + "t";
          EXPECT_EQ(ref.total_shortcut_edges, got.total_shortcut_edges) << ctx;
          expect_report_equal(ref.quality, got.quality, ctx);
        });
    set_num_threads(8);
    const core::KpStreamReport streamed = core::measure_kp_quality(inst.g, inst.parts, opt);
    const core::KpBuildResult built = core::build_kp_shortcuts(inst.g, inst.parts, opt);
    const core::QualityReport direct = core::measure_quality(inst.g, inst.parts, built.shortcuts);
    expect_report_equal(streamed.quality, direct, inst.name + " streamed-vs-direct");
    set_num_threads(0);
  }
}

TEST(ParallelDeterminism, OddDiameterBuildBitIdentical) {
  for (const std::uint32_t n : {200u, 400u}) {
    graph::HardInstance hi = graph::hard_instance(n, 5);
    core::KpOptions opt;
    opt.seed = 41;
    opt.diameter = 5;
    across_thread_counts<core::KpBuildResult>(
        [&] { return core::build_kp_shortcuts_odd(hi.g, hi.paths, opt); },
        [&](const core::KpBuildResult& ref, const core::KpBuildResult& got, unsigned t) {
          EXPECT_EQ(ref.shortcuts.h, got.shortcuts.h) << "odd n=" << n << " @" << t << "t";
        });
  }
}

TEST(ParallelDeterminism, SimulatorParallelMatchesSequential) {
  for (const Instance& inst : instances()) {
    if (inst.g.num_vertices() == 0) continue;
    // Sequential reference run.
    congest::Simulator seq_sim(inst.g);
    congest::BfsProgram seq_bfs(inst.g.num_vertices(), 0);
    const congest::RunStats seq = seq_sim.run(seq_bfs, inst.g.num_vertices() + 2);
    for (const unsigned t : kThreadCounts) {
      set_num_threads(t);
      congest::Simulator sim(inst.g);
      sim.set_parallel(true);
      congest::BfsProgram bfs(inst.g.num_vertices(), 0);
      const congest::RunStats par = sim.run(bfs, inst.g.num_vertices() + 2);
      const std::string ctx = inst.name + " @" + std::to_string(t) + "t";
      EXPECT_EQ(seq.rounds, par.rounds) << ctx;
      EXPECT_EQ(seq.messages, par.messages) << ctx;
      EXPECT_EQ(seq.max_edge_load, par.max_edge_load) << ctx;
      EXPECT_EQ(seq.completed, par.completed) << ctx;
      EXPECT_EQ(seq_bfs.dist(), bfs.dist()) << ctx;
      EXPECT_EQ(seq_bfs.parent(), bfs.parent()) << ctx;
    }
    set_num_threads(0);
  }
}

TEST(ParallelDeterminism, BellmanFordParallelMatchesSequential) {
  Rng rng(5);
  // 777 nodes: the node range chunks to non-word-aligned boundaries at every
  // thread count, so a per-node flag packed into shared words (the
  // vector<bool> hazard simulator.hpp warns about) would surface under TSan.
  const graph::Graph g = graph::connected_gnm(777, 2000, rng);
  graph::EdgeWeights w(g.num_edges());
  for (auto& x : w) x = static_cast<graph::Weight>(1 + rng.uniform(50));
  congest::Simulator seq_sim(g);
  congest::BellmanFordProgram seq_bf(g, w, 0);
  const congest::RunStats seq = seq_sim.run(seq_bf, 200);
  for (const unsigned t : kThreadCounts) {
    set_num_threads(t);
    congest::Simulator sim(g);
    sim.set_parallel(true);
    congest::BellmanFordProgram bf(g, w, 0);
    const congest::RunStats par = sim.run(bf, 200);
    EXPECT_EQ(seq.rounds, par.rounds) << t;
    EXPECT_EQ(seq.messages, par.messages) << t;
    EXPECT_EQ(seq_bf.dist(), bf.dist()) << t;
  }
  set_num_threads(0);
}

TEST(ParallelDeterminism, RngSplitIsCounterBased) {
  Rng base(12345);
  // Draining the parent does not change split streams (unlike fork).
  Rng drained(12345);
  for (int i = 0; i < 100; ++i) (void)drained();
  for (const std::uint64_t stream : {0ull, 1ull, 2ull, 1ull << 40}) {
    Rng a = base.split(stream);
    Rng b = drained.split(stream);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b()) << stream;
  }
  // Distinct streams diverge.
  Rng s0 = base.split(0);
  Rng s1 = base.split(1);
  bool differs = false;
  for (int i = 0; i < 16; ++i) differs = differs || (s0() != s1());
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace lcs
